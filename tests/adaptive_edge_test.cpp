// Degenerate-input hardening of the adaptive core.
//
// The characterizer, both deciders, the cost model, the phase monitor and
// AdaptiveReducer::invoke must be well-defined — no division by zero, no
// NaN/Inf in stats or predictions, no crash — on the degenerate loops real
// applications produce: zero iterations (an empty work list this
// timestep), zero references (all iterations empty), and every reference
// hitting one element (a global accumulator loop).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/adaptive.hpp"
#include "core/runtime.hpp"

namespace sapp {
namespace {

AccessPattern zero_iteration_pattern(std::size_t dim = 64) {
  AccessPattern p;
  p.dim = dim;
  p.refs = Csr({0}, {});
  return p;
}

AccessPattern zero_ref_pattern(std::size_t dim = 64,
                               std::size_t iterations = 50) {
  AccessPattern p;
  p.dim = dim;
  std::vector<std::uint64_t> ptr(iterations + 1, 0);
  p.refs = Csr(std::move(ptr), {});
  return p;
}

AccessPattern single_element_pattern(std::size_t dim = 64,
                                     std::size_t iterations = 40) {
  AccessPattern p;
  p.dim = dim;
  std::vector<std::uint64_t> ptr{0};
  std::vector<std::uint32_t> idx;
  for (std::size_t i = 0; i < iterations; ++i) {
    idx.push_back(7);  // every reference lands on one element
    ptr.push_back(idx.size());
  }
  p.refs = Csr(std::move(ptr), std::move(idx));
  return p;
}

ReductionInput input_for(AccessPattern p) {
  ReductionInput in;
  in.pattern = std::move(p);
  in.values.assign(in.pattern.num_refs(), 1.5);
  return in;
}

void expect_finite_stats(const PatternStats& s, const char* what) {
  EXPECT_TRUE(std::isfinite(s.mo)) << what;
  EXPECT_TRUE(std::isfinite(s.con)) << what;
  EXPECT_TRUE(std::isfinite(s.sp)) << what;
  EXPECT_TRUE(std::isfinite(s.dim_ratio)) << what;
  EXPECT_TRUE(std::isfinite(s.chr)) << what;
  EXPECT_TRUE(std::isfinite(s.chd_gini)) << what;
  EXPECT_TRUE(std::isfinite(s.touched_per_thread)) << what;
  EXPECT_TRUE(std::isfinite(s.shared_fraction)) << what;
  EXPECT_TRUE(std::isfinite(s.lw_replication)) << what;
  EXPECT_TRUE(std::isfinite(s.lw_imbalance)) << what;
}

void expect_finite_predictions(const Decision& d, const char* what) {
  ASSERT_FALSE(d.predictions.empty()) << what;
  for (const auto& p : d.predictions) {
    EXPECT_TRUE(std::isfinite(p.plan_s)) << what;
    EXPECT_TRUE(std::isfinite(p.init_s)) << what;
    EXPECT_TRUE(std::isfinite(p.loop_s)) << what;
    EXPECT_TRUE(std::isfinite(p.merge_s)) << what;
  }
}

class AdaptiveEdge : public ::testing::TestWithParam<unsigned> {};

TEST_P(AdaptiveEdge, CharacterizeAndDecideAreFiniteOnDegenerates) {
  const unsigned threads = GetParam();
  const MachineCoeffs mc = MachineCoeffs::defaults();
  const struct {
    const char* name;
    AccessPattern pattern;
  } cases[] = {
      {"zero-iterations", zero_iteration_pattern()},
      {"zero-refs", zero_ref_pattern()},
      {"single-element", single_element_pattern()},
  };
  for (const auto& c : cases) {
    const PatternStats s = characterize(c.pattern, threads);
    expect_finite_stats(s, c.name);
    const Decision model = decide_model(s, c.pattern.body_flops, mc);
    expect_finite_predictions(model, c.name);
    const Decision rules = decide_rules(s);
    EXPECT_FALSE(rules.rationale.empty()) << c.name;
  }
}

TEST_P(AdaptiveEdge, CharacterizeExactCountsOnDegenerates) {
  const unsigned threads = GetParam();
  const PatternStats none = characterize(zero_iteration_pattern(), threads);
  EXPECT_EQ(none.iterations, 0u);
  EXPECT_EQ(none.refs, 0u);
  EXPECT_EQ(none.distinct, 0u);
  EXPECT_DOUBLE_EQ(none.mo, 0.0);
  EXPECT_DOUBLE_EQ(none.con, 0.0);
  EXPECT_DOUBLE_EQ(none.sp, 0.0);

  const PatternStats empty = characterize(zero_ref_pattern(64, 50), threads);
  EXPECT_EQ(empty.iterations, 50u);
  EXPECT_EQ(empty.refs, 0u);
  EXPECT_DOUBLE_EQ(empty.mo, 0.0);

  const PatternStats one =
      characterize(single_element_pattern(64, 40), threads);
  EXPECT_EQ(one.distinct, 1u);
  EXPECT_DOUBLE_EQ(one.con, 40.0);
  EXPECT_DOUBLE_EQ(one.chd_gini, 0.0);  // one element: no skew to measure
}

TEST_P(AdaptiveEdge, InvokeHandlesDegeneratesAndStaysCorrect) {
  const unsigned threads = GetParam();
  ThreadPool pool(threads);
  const struct {
    const char* name;
    ReductionInput in;
  } cases[] = {
      {"zero-iterations", input_for(zero_iteration_pattern())},
      {"zero-refs", input_for(zero_ref_pattern())},
      {"single-element", input_for(single_element_pattern())},
  };
  for (const auto& c : cases) {
    AdaptiveReducer red(pool, MachineCoeffs::defaults());
    std::vector<double> out(c.in.pattern.dim, 0.0);
    std::vector<double> ref(c.in.pattern.dim, 0.0);
    run_sequential(c.in, ref);
    for (int k = 0; k < 3; ++k) {
      std::fill(out.begin(), out.end(), 0.0);
      const SchemeResult r = red.invoke(c.in, out);
      EXPECT_TRUE(std::isfinite(r.total_with_inspect_s())) << c.name;
    }
    for (std::size_t e = 0; e < ref.size(); ++e)
      ASSERT_NEAR(ref[e], out[e], 1e-9) << c.name << " element " << e;
    EXPECT_EQ(red.invocations(), 3u) << c.name;
    expect_finite_predictions(red.decision(), c.name);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, AdaptiveEdge, ::testing::Values(1u, 3u));

TEST(CharacterizeEdge, HugeThreadCountClampsInsteadOfAborting) {
  // The owner classification packs thread ids into a byte; a > 253-thread
  // pool must degrade to approximate sharing stats, not crash.
  const PatternStats s = characterize(single_element_pattern(64, 40), 300);
  expect_finite_stats(s, "300 threads");
  EXPECT_EQ(s.threads, 300u);
  EXPECT_EQ(s.distinct, 1u);
}

TEST(PhaseMonitorEdge, ZeroRefBaseIsWellDefined) {
  PhaseMonitor mon(0.25);
  const auto base = PatternSignature::of(zero_ref_pattern(64, 50));
  EXPECT_EQ(base.refs, 0u);
  mon.rebase(base);
  // Observing the same empty pattern forever must never trigger and never
  // produce a non-finite accumulator.
  for (int k = 0; k < 50; ++k) {
    EXPECT_FALSE(mon.observe(base));
    EXPECT_TRUE(std::isfinite(mon.accumulated()));
    EXPECT_DOUBLE_EQ(mon.accumulated(), 0.0);
  }
  // The loop coming back to life (refs 0 -> many) is a structural change:
  // drift accumulates and triggers re-characterization.
  const auto alive = PatternSignature::of(single_element_pattern(64, 40));
  bool triggered = false;
  for (int k = 0; k < 10 && !triggered; ++k) triggered = mon.observe(alive);
  EXPECT_TRUE(triggered);
  EXPECT_TRUE(std::isfinite(mon.accumulated()));
}

TEST(PhaseMonitorEdge, ZeroIterationSignature) {
  const auto sig = PatternSignature::of(zero_iteration_pattern());
  EXPECT_EQ(sig.iterations, 0u);
  EXPECT_EQ(sig.refs, 0u);
  EXPECT_EQ(sig.sampled_index_sum, 0u);
}

TEST(RuntimeEdge, SubmitDegenerateSites) {
  Runtime rt(RuntimeOptions{.threads = 2, .calibrate = false});
  auto empty = input_for(zero_iteration_pattern());
  empty.pattern.loop_id = "edge/empty";
  auto dense = input_for(single_element_pattern());
  dense.pattern.loop_id = "edge/one";
  std::vector<double> out(64, 0.0);
  (void)rt.submit(empty, out);
  (void)rt.submit(dense, out);
  EXPECT_EQ(rt.site_count(), 2u);
  EXPECT_EQ(rt.site("edge/empty").invocations(), 1u);
  // Degenerate sites must serialize into the decision cache and back.
  const DecisionCache cache = rt.snapshot_decisions();
  EXPECT_EQ(cache.size(), 2u);
  const auto round = DecisionCache::from_json(cache.to_json());
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round->size(), 2u);
}

}  // namespace
}  // namespace sapp
