// Kernel backends, aligned buffers, topology reader and the topology-aware
// combine schedule.
//
// The contracts pinned here:
//   * every compiled+usable backend's fill/merge matches a plain C++ loop
//     bitwise on every length (SIMD main loops, unrolled bodies and tail
//     handling included) and on adversarial values (NaN, +-0, +-inf);
//   * AlignedBuffer delivers 64-byte storage (the backends' assumption);
//   * CombineSchedule partitions [0, P) exactly, the grouped rep/sel merge
//     is deterministic, agrees with the flat merge under the summation
//     error bound, and degenerates to the flat (bitwise-historical) order
//     when every group has one worker.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/aligned.hpp"
#include "common/topology.hpp"
#include "differential_cases.hpp"
#include "reductions/kernels.hpp"
#include "reductions/scheme_rep.hpp"
#include "reductions/scheme_sel.hpp"

namespace sapp {
namespace {

// ------------------------------------------------------- AlignedBuffer

TEST(AlignedBuffer, DeliversCacheLineAlignment) {
  for (const std::size_t n : {1u, 7u, 64u, 1000u, 4096u}) {
    AlignedBuffer<double> b(n);
    EXPECT_EQ(b.size(), n);
    EXPECT_FALSE(b.empty());
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % kCacheLine, 0u);
    SAPP_ASSERT_ALIGNED(b.data());  // the macro itself must accept it
  }
  AlignedBuffer<std::int32_t> ints(33);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ints.data()) % kCacheLine, 0u);
}

TEST(AlignedBuffer, MoveTransfersOwnershipAndEmptyIsEmpty) {
  AlignedBuffer<double> a(16);
  a[0] = 42.0;
  double* p = a.data();
  AlignedBuffer<double> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b[0], 42.0);
  EXPECT_EQ(a.data(), nullptr);  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(a.empty());

  AlignedBuffer<double> c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.data(), nullptr);
  c = std::move(b);
  EXPECT_EQ(c.data(), p);
}

// ------------------------------------------------------------- kernels

using kernels::Backend;

TEST(Kernels, ScalarIsAlwaysUsableAndListedFirst) {
  const auto usable = kernels::usable_backends();
  ASSERT_FALSE(usable.empty());
  EXPECT_EQ(usable.front(), Backend::kScalar);
  EXPECT_TRUE(kernels::compiled(Backend::kScalar));
  EXPECT_TRUE(kernels::cpu_supports(Backend::kScalar));
  // detect_best is the widest usable backend.
  EXPECT_EQ(kernels::detect_best(), usable.back());
}

TEST(Kernels, ParseBackendRoundTripsAndRejectsJunk) {
  for (const Backend b :
       {Backend::kScalar, Backend::kAvx2, Backend::kAvx512}) {
    Backend out{};
    ASSERT_TRUE(kernels::parse_backend(kernels::to_string(b), out));
    EXPECT_EQ(out, b);
  }
  Backend out{};
  EXPECT_FALSE(kernels::parse_backend("", out));
  EXPECT_FALSE(kernels::parse_backend("sse9", out));
  EXPECT_FALSE(kernels::parse_backend("AVX2", out));  // spellings are lower
}

TEST(Kernels, SetBackendRoundTripsOverUsableAndRefusesUnusable) {
  const Backend original = kernels::active_backend();
  for (const Backend b : kernels::usable_backends()) {
    ASSERT_TRUE(kernels::set_backend(b));
    EXPECT_EQ(kernels::active_backend(), b);
    EXPECT_STREQ(kernels::active().name, kernels::to_string(b));
  }
#ifndef __x86_64__
  EXPECT_FALSE(kernels::set_backend(Backend::kAvx2));
#endif
  ASSERT_TRUE(kernels::set_backend(original));
  // The summary names the active backend.
  EXPECT_NE(kernels::dispatch_summary().find(kernels::active().name),
            std::string::npos);
}

/// Reference implementations the backends must match bitwise.
enum class OpRefKind { kSum, kProd, kMin, kMax };
void ref_merge_apply(OpRefKind op, double* acc, const double* src,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    switch (op) {
      case OpRefKind::kSum: acc[i] = acc[i] + src[i]; break;
      case OpRefKind::kProd: acc[i] = acc[i] * src[i]; break;
      case OpRefKind::kMin: acc[i] = acc[i] < src[i] ? acc[i] : src[i]; break;
      case OpRefKind::kMax: acc[i] = acc[i] > src[i] ? acc[i] : src[i]; break;
    }
  }
}

kernels::MergeFn pick(const kernels::KernelOps& k, OpRefKind op) {
  switch (op) {
    case OpRefKind::kSum: return k.merge_sum;
    case OpRefKind::kProd: return k.merge_prod;
    case OpRefKind::kMin: return k.merge_min;
    case OpRefKind::kMax: return k.merge_max;
  }
  return nullptr;
}

TEST(Kernels, EveryBackendMatchesTheReferenceBitwiseOnEveryLength) {
  constexpr std::size_t kMax = 67;  // covers 512-bit x2, 512, 256, tails
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  AlignedBuffer<double> acc0(kMax), src(kMax), got(kMax), want(kMax);
  Rng rng(0xFEEDu);
  for (std::size_t i = 0; i < kMax; ++i) {
    acc0[i] = rng.uniform(-3.0, 3.0);
    src[i] = rng.uniform(-3.0, 3.0);
  }
  // Adversarial values at positions straddling vector-width boundaries.
  acc0[3] = qnan;  src[5] = qnan;
  acc0[8] = -0.0;  src[8] = +0.0;
  acc0[9] = +0.0;  src[9] = -0.0;
  acc0[17] = inf;  src[18] = -inf;
  acc0[33] = qnan; src[33] = qnan;

  for (const Backend b : kernels::usable_backends()) {
    const kernels::KernelOps* k = nullptr;
    {
      const Backend original = kernels::active_backend();
      ASSERT_TRUE(kernels::set_backend(b));
      k = &kernels::active();
      ASSERT_TRUE(kernels::set_backend(original));
    }
    for (std::size_t n = 0; n <= kMax; ++n) {
      // fill: exact bit pattern, including negative zero and NaN payloads.
      for (const double v : {0.0, -0.0, 1.5, qnan}) {
        k->fill(got.data(), n, v);
        for (std::size_t i = 0; i < n; ++i) want[i] = v;
        EXPECT_EQ(std::memcmp(got.data(), want.data(), n * sizeof(double)),
                  0)
            << kernels::to_string(b) << " fill n=" << n << " v=" << v;
      }
      for (const OpRefKind op : {OpRefKind::kSum, OpRefKind::kProd,
                                 OpRefKind::kMin, OpRefKind::kMax}) {
        std::memcpy(got.data(), acc0.data(), kMax * sizeof(double));
        std::memcpy(want.data(), acc0.data(), kMax * sizeof(double));
        pick(*k, op)(got.data(), src.data(), n);
        ref_merge_apply(op, want.data(), src.data(), n);
        EXPECT_EQ(
            std::memcmp(got.data(), want.data(), kMax * sizeof(double)), 0)
            << kernels::to_string(b) << " merge op="
            << static_cast<int>(op) << " n=" << n;
      }
    }
  }
}

TEST(Kernels, MergeFnMapsOperatorsAndFillNeutralFills) {
  const kernels::KernelOps& k = kernels::scalar_ops();
  EXPECT_EQ(kernels::merge_fn<SumOp<double>>(k), k.merge_sum);
  EXPECT_EQ(kernels::merge_fn<ProdOp<double>>(k), k.merge_prod);
  EXPECT_EQ(kernels::merge_fn<MinOp<double>>(k), k.merge_min);
  EXPECT_EQ(kernels::merge_fn<MaxOp<double>>(k), k.merge_max);

  AlignedBuffer<double> buf(13);
  kernels::fill_neutral<MaxOp<double>>(k, buf.data(), buf.size());
  for (std::size_t i = 0; i < buf.size(); ++i)
    EXPECT_EQ(buf[i], MaxOp<double>::neutral()) << i;
  kernels::fill_neutral<SumOp<double>>(k, buf.data(), buf.size());
  for (std::size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0.0) << i;
}

// ------------------------------------------------------------ topology

TEST(Topology, ParseCpulistHandlesSysfsShapes) {
  EXPECT_EQ(parse_cpulist("0-3,8-11"),
            (std::vector<unsigned>{0, 1, 2, 3, 8, 9, 10, 11}));
  EXPECT_EQ(parse_cpulist("0"), (std::vector<unsigned>{0}));
  EXPECT_EQ(parse_cpulist("5,7"), (std::vector<unsigned>{5, 7}));
  EXPECT_TRUE(parse_cpulist("").empty());
  EXPECT_TRUE(parse_cpulist("garbage").empty());
  EXPECT_EQ(parse_cpulist("3-1,4"), (std::vector<unsigned>{4}));  // hi < lo
  EXPECT_EQ(parse_cpulist("4-2"), (std::vector<unsigned>{}));     // hi < lo
  EXPECT_EQ(parse_cpulist("x,2"), (std::vector<unsigned>{2}));
  // Overlapping chunks are legal sysfs output: each CPU exactly once,
  // sorted, no matter how the kernel phrased the list.
  EXPECT_EQ(parse_cpulist("0-2,2,1"), (std::vector<unsigned>{0, 1, 2}));
  EXPECT_EQ(parse_cpulist("2,0-1"), (std::vector<unsigned>{0, 1, 2}));
  EXPECT_TRUE(parse_cpulist("-3").empty());  // malformed range
}

TEST(Topology, HostProbeIsSaneAndSummarizes) {
  const CpuTopology& t = CpuTopology::host();
  EXPECT_GE(t.total_cpus, 1u);
  ASSERT_FALSE(t.nodes.empty());
  unsigned cpus = 0;
  for (const auto& n : t.nodes) cpus += static_cast<unsigned>(n.cpus.size());
  EXPECT_EQ(cpus, t.total_cpus);
  EXPECT_FALSE(t.summary().empty());
}

TEST(CombineScheduleTest, EqualGroupsPartitionExactly) {
  for (const unsigned P : {1u, 2u, 3u, 7u, 8u, 16u}) {
    for (const unsigned G : {1u, 2u, 3u, 5u, 16u, 40u}) {
      const CombineSchedule s = CombineSchedule::equal_groups(P, G);
      ASSERT_FALSE(s.groups.empty()) << P << "/" << G;
      EXPECT_LE(s.group_count(), static_cast<std::size_t>(std::min(P, G)));
      std::size_t expect_begin = 0;
      for (const Range& g : s.groups) {
        EXPECT_EQ(g.begin, expect_begin);
        EXPECT_FALSE(g.empty());
        expect_begin = g.end;
      }
      EXPECT_EQ(expect_begin, P);
      for (unsigned tid = 0; tid < P; ++tid) {
        const Range& g = s.group_of(tid);
        EXPECT_TRUE(tid >= g.begin && tid < g.end) << P << "/" << G;
      }
    }
  }
}

TEST(CombineScheduleTest, FromTopologySplitsProportionally) {
  CpuTopology t;
  t.nodes.push_back({0, {0, 1, 2, 3}});
  t.nodes.push_back({1, {4, 5, 6, 7}});
  t.total_cpus = 8;
  const CombineSchedule s = CombineSchedule::from_topology(8, t);
  ASSERT_EQ(s.group_count(), 2u);
  EXPECT_EQ(s.groups[0].begin, 0u);
  EXPECT_EQ(s.groups[0].end, 4u);
  EXPECT_EQ(s.groups[1].end, 8u);

  // Uneven shares: 2-cpu + 6-cpu nodes, 4 workers -> 1 + 3.
  CpuTopology u;
  u.nodes.push_back({0, {0, 1}});
  u.nodes.push_back({1, {2, 3, 4, 5, 6, 7}});
  u.total_cpus = 8;
  const CombineSchedule s2 = CombineSchedule::from_topology(4, u);
  ASSERT_EQ(s2.group_count(), 2u);
  EXPECT_EQ(s2.groups[0].end, 1u);
  EXPECT_EQ(s2.groups[1].end, 4u);

  // Fewer workers than nodes: empty blocks are dropped, union still exact.
  const CombineSchedule s3 = CombineSchedule::from_topology(1, t);
  ASSERT_EQ(s3.group_count(), 1u);
  EXPECT_EQ(s3.groups[0].end, 1u);

  // Single node is flat.
  CpuTopology one;
  one.nodes.push_back({0, {0, 1}});
  one.total_cpus = 2;
  EXPECT_TRUE(CombineSchedule::from_topology(2, one).flat());
}

TEST(CombineScheduleTest, ForceGroupsOverridesAndRestores) {
  topology::force_groups(3);
  const CombineSchedule s = CombineSchedule::for_workers(6);
  EXPECT_EQ(s.group_count(), 3u);
  EXPECT_NE(topology::policy_summary().find("forced"), std::string::npos);
  topology::force_groups(0);
  // This host/CI runs single-node (or flat fallback): back to flat.
  EXPECT_LE(CombineSchedule::for_workers(6).group_count(),
            CpuTopology::host().nodes.size());
}

// -------------------------------------- grouped (hierarchical) combine

/// Reference ascending-thread-order fold (the flat contract) computed with
/// plain vectors — mirrors op_thread_fold in scheme_differential_test.cpp.
template <typename Op>
std::vector<double> flat_fold_reference(const ReductionInput& in,
                                        unsigned P) {
  const auto& ptr = in.pattern.refs.row_ptr();
  const auto& idx = in.pattern.refs.indices();
  std::vector<std::vector<double>> val(
      P, std::vector<double>(in.pattern.dim, Op::neutral()));
  for (unsigned t = 0; t < P; ++t) {
    const Range rg = static_block(in.pattern.iterations(), t, P);
    for (std::size_t i = rg.begin; i < rg.end; ++i) {
      const double s = iteration_scale(i, in.pattern.body_flops);
      for (std::uint64_t j = ptr[i]; j < ptr[i + 1]; ++j)
        val[t][idx[j]] = Op::apply(val[t][idx[j]], in.values[j] * s);
    }
  }
  std::vector<double> out(in.pattern.dim, Op::neutral());
  for (std::size_t e = 0; e < in.pattern.dim; ++e)
    for (unsigned t = 0; t < P; ++t)
      out[e] = Op::apply(out[e], val[t][e]);
  return out;
}

class GroupedCombine : public ::testing::Test {
 protected:
  void TearDown() override { topology::force_groups(0); }
};

TEST_F(GroupedCombine, SingletonGroupsReproduceTheFlatOrderBitwise) {
  // G == P makes every group one worker: stage 2 folds the "leaders" in
  // ascending order, which IS the flat historical order.
  const unsigned P = 4;
  ThreadPool pool(P);
  const auto c = difftest::derive_case(11);
  const ReductionInput in = difftest::build_input(c, 11);
  RepScheme<SumOp<double>> rep;

  topology::force_groups(0);
  std::vector<double> flat(in.pattern.dim, 0.0);
  (void)rep.run(in, pool, flat);

  topology::force_groups(P);
  std::vector<double> grouped(in.pattern.dim, 0.0);
  (void)rep.run(in, pool, grouped);

  ASSERT_EQ(std::memcmp(flat.data(), grouped.data(),
                        flat.size() * sizeof(double)),
            0);
}

TEST_F(GroupedCombine, GroupedMergeIsDeterministicAndErrorBounded) {
  constexpr double eps = std::numeric_limits<double>::epsilon();
  for (const int ci : {3, 22, 41}) {
    const auto c = difftest::derive_case(ci);
    const unsigned P = 4;
    ThreadPool pool(P);
    const ReductionInput in = difftest::build_input(c, ci);
    const std::vector<double> ref =
        flat_fold_reference<SumOp<double>>(in, P);

    // Per-element absolute-contribution sums for the reassociation bound.
    std::vector<double> abs(in.pattern.dim, 0.0);
    std::vector<std::size_t> cnt(in.pattern.dim, 0);
    const auto& ptr = in.pattern.refs.row_ptr();
    const auto& idx = in.pattern.refs.indices();
    for (std::size_t i = 0; i < in.pattern.iterations(); ++i) {
      const double s = iteration_scale(i, in.pattern.body_flops);
      for (std::uint64_t j = ptr[i]; j < ptr[i + 1]; ++j) {
        abs[idx[j]] += std::abs(in.values[j] * s);
        ++cnt[idx[j]];
      }
    }

    for (const unsigned G : {2u, 3u}) {
      topology::force_groups(G);
      RepScheme<SumOp<double>> rep;
      SelectiveScheme<SumOp<double>> sel;
      for (Scheme* scheme : {static_cast<Scheme*>(&rep),
                             static_cast<Scheme*>(&sel)}) {
        std::vector<double> out1(in.pattern.dim, 0.0);
        (void)scheme->run(in, pool, out1);
        std::vector<double> out2(in.pattern.dim, 0.0);
        (void)scheme->run(in, pool, out2);
        ASSERT_EQ(std::memcmp(out1.data(), out2.data(),
                              out1.size() * sizeof(double)),
                  0)
            << "case " << ci << " G=" << G << ": nondeterministic";
        for (std::size_t e = 0; e < out1.size(); ++e) {
          const double bound =
              (4.0 + static_cast<double>(cnt[e])) * eps * abs[e] +
              std::numeric_limits<double>::denorm_min();
          ASSERT_LE(std::abs(out1[e] - ref[e]), bound)
              << "case " << ci << " G=" << G << " element " << e;
        }
      }

      // Exact operators: any grouping is bitwise-identical to flat.
      RepScheme<MaxOp<double>> repmax;
      std::vector<double> gmax(in.pattern.dim, MaxOp<double>::neutral());
      (void)repmax.run(in, pool, gmax);
      const std::vector<double> refmax =
          flat_fold_reference<MaxOp<double>>(in, P);
      ASSERT_EQ(std::memcmp(gmax.data(), refmax.data(),
                            gmax.size() * sizeof(double)),
                0)
          << "case " << ci << " G=" << G << ": max not bitwise";
    }
    topology::force_groups(0);
  }
}

}  // namespace
}  // namespace sapp
