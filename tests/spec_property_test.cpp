// Randomized property tests for the speculative runtime: for arbitrary
// generated loop bodies, R-LRPD must always produce the sequential result,
// and the LRPD classification must be consistent with a ground-truth
// dependence oracle.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "spec/lrpd.hpp"
#include "spec/rlrpd.hpp"
#include "spec/wavefront.hpp"

namespace sapp {
namespace {

ThreadPool& pool4() {
  static ThreadPool pool(4);
  return pool;
}

// ---------------- R-LRPD equivalence on random bodies ----------------

struct RandomBody {
  // Per iteration: optional write, optional read, reductions.
  struct Step {
    std::int32_t write_elem = -1;   // -1 = none
    std::int32_t read_elem = -1;
    std::uint32_t red_elem = 0;
    double value;
  };
  std::vector<Step> steps;
  std::size_t dim;

  static RandomBody make(std::uint64_t seed, std::size_t n, std::size_t dim,
                         double write_p, double read_p) {
    Rng rng(seed);
    RandomBody b;
    b.dim = dim;
    b.steps.resize(n);
    for (auto& st : b.steps) {
      if (rng.uniform() < write_p)
        st.write_elem = static_cast<std::int32_t>(rng.below(dim));
      if (rng.uniform() < read_p)
        st.read_elem = static_cast<std::int32_t>(rng.below(dim));
      st.red_elem = static_cast<std::uint32_t>(rng.below(dim));
      st.value = rng.uniform(-1.0, 1.0);
    }
    return b;
  }

  [[nodiscard]] SpecLoopBody body() const {
    return [this](std::size_t i, SpecArray& a) {
      const Step& st = steps[i];
      double acc = st.value;
      if (st.read_elem >= 0)
        acc += 0.25 * a.read(static_cast<std::uint32_t>(st.read_elem));
      if (st.write_elem >= 0)
        a.write(static_cast<std::uint32_t>(st.write_elem), acc);
      a.reduce_add(st.red_elem, acc);
    };
  }
};

class RlrpdRandom
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(RlrpdRandom, MatchesSequentialExactly) {
  const auto [seed, write_p, read_p] = GetParam();
  const auto rb = RandomBody::make(static_cast<std::uint64_t>(seed) + 1000,
                                   600, 80, write_p, read_p);
  std::vector<double> seq(rb.dim, 0.0), par(rb.dim, 0.0);
  sequential_execute(rb.steps.size(), rb.body(), seq);
  const auto st = rlrpd_execute(rb.steps.size(), rb.body(), par, pool4());
  EXPECT_TRUE(st.success);
  EXPECT_EQ(st.committed, rb.steps.size());
  for (std::size_t e = 0; e < rb.dim; ++e)
    ASSERT_NEAR(seq[e], par[e], 1e-12) << "seed " << seed << " elem " << e;
}

std::string rlrpd_param_name(
    const ::testing::TestParamInfo<std::tuple<int, double, double>>& info) {
  const int seed = std::get<0>(info.param);
  const double wp = std::get<1>(info.param);
  const double rp = std::get<2>(info.param);
  return "s" + std::to_string(seed) + "_w" +
         std::to_string(static_cast<int>(wp * 100)) + "_r" +
         std::to_string(static_cast<int>(rp * 100));
}

INSTANTIATE_TEST_SUITE_P(
    Densities, RlrpdRandom,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(0.0, 0.05, 0.3),
                       ::testing::Values(0.0, 0.05, 0.3)),
    rlrpd_param_name);

// ---------------- checker-forced rollback on a corrupted commit ----------

// A corrupted speculative value must never commit: with the in-flight
// commit check at sample_rate 1.0 the shadow comparison forces the
// mis-speculation rollback, the corrupted block re-executes exactly once
// (the injector is a single shot), and the final array equals the serial
// reference. Matching values also rule out a double-commit — committing a
// reduction block twice would double its contributions.
TEST(RlrpdChecker, CorruptedCommitRollsBackToSequentialResult) {
  // Reduction-only bodies never mis-speculate on their own, so the shadow
  // check is provably the only rollback source and the counters are exact.
  for (int seed = 0; seed < 8; ++seed) {
    const auto rb = RandomBody::make(static_cast<std::uint64_t>(seed) + 5000,
                                     600, 80, 0.0, 0.0);
    std::vector<double> seq(rb.dim, 0.0), par(rb.dim, 0.0);
    sequential_execute(rb.steps.size(), rb.body(), seq);

    FaultInjector inj;
    inj.arm(FaultSite::kSpecCommit, static_cast<std::uint64_t>(seed) * 31 + 7,
            1);
    RlrpdConfig cfg;
    cfg.check.enabled = true;
    cfg.check.sample_rate = 1.0;
    cfg.fault_injector = &inj;
    const auto st =
        rlrpd_execute(rb.steps.size(), rb.body(), par, pool4(), cfg);

    ASSERT_EQ(inj.injected(), 1u) << "seed " << seed;
    EXPECT_TRUE(st.success);
    EXPECT_EQ(st.committed, rb.steps.size());
    EXPECT_GE(st.checked_blocks, 1u);
    EXPECT_EQ(st.check_failures, 1u)
        << "seed " << seed
        << ": every corruption is sampled at rate 1.0, and the spent "
           "injector cannot fail a later round";
    EXPECT_EQ(st.rounds, 2u)
        << "seed " << seed
        << ": one rollback round, then a clean completion — exactly once";
    EXPECT_GE(st.reexecuted, 1u)
        << "seed " << seed << ": the corrupted block must be thrown away";
    for (std::size_t e = 0; e < rb.dim; ++e)
      ASSERT_NEAR(seq[e], par[e], 1e-12) << "seed " << seed << " elem " << e;
  }
}

// Mixed read/write bodies: a natural mis-speculation can evict the
// corrupted block before its shadow check runs (the rollback machinery is
// shared), so only the end state is pinned — serial result, full commit.
TEST(RlrpdChecker, CorruptedCommitStaysCorrectUnderNaturalConflicts) {
  for (int seed = 0; seed < 6; ++seed) {
    const auto rb = RandomBody::make(static_cast<std::uint64_t>(seed) + 7000,
                                     600, 80, 0.2, 0.2);
    std::vector<double> seq(rb.dim, 0.0), par(rb.dim, 0.0);
    sequential_execute(rb.steps.size(), rb.body(), seq);
    FaultInjector inj;
    inj.arm(FaultSite::kSpecCommit, static_cast<std::uint64_t>(seed) + 1, 1);
    RlrpdConfig cfg;
    cfg.check.enabled = true;
    cfg.check.sample_rate = 1.0;
    cfg.fault_injector = &inj;
    const auto st =
        rlrpd_execute(rb.steps.size(), rb.body(), par, pool4(), cfg);
    ASSERT_EQ(inj.injected(), 1u) << "seed " << seed;
    EXPECT_TRUE(st.success);
    EXPECT_EQ(st.committed, rb.steps.size());
    EXPECT_LE(st.check_failures, 1u);
    for (std::size_t e = 0; e < rb.dim; ++e)
      ASSERT_NEAR(seq[e], par[e], 1e-12) << "seed " << seed << " elem " << e;
  }
}

// Clean runs under the commit check: no false positives, identical result.
TEST(RlrpdChecker, CleanCheckedRunNeverFailsAndMatchesUnchecked) {
  for (int seed = 0; seed < 6; ++seed) {
    const auto rb = RandomBody::make(static_cast<std::uint64_t>(seed) + 9000,
                                     600, 80, 0.3, 0.3);
    std::vector<double> plain(rb.dim, 0.0), checked(rb.dim, 0.0);
    const auto st0 =
        rlrpd_execute(rb.steps.size(), rb.body(), plain, pool4());
    RlrpdConfig cfg;
    cfg.check.enabled = true;
    cfg.check.sample_rate = 1.0;
    const auto st1 =
        rlrpd_execute(rb.steps.size(), rb.body(), checked, pool4(), cfg);
    EXPECT_EQ(st1.check_failures, 0u) << "seed " << seed;
    EXPECT_GE(st1.checked_blocks, 1u);
    EXPECT_EQ(st0.rounds, st1.rounds)
        << "seed " << seed << ": the check must not change scheduling";
    // Identical block schedule and identical arithmetic: bitwise equal.
    for (std::size_t e = 0; e < rb.dim; ++e)
      ASSERT_EQ(plain[e], checked[e]) << "seed " << seed << " elem " << e;
  }
}

// ---------------- LRPD vs a dependence oracle ----------------

// Ground truth: a flow dependence exists iff some iteration reads an
// element (exposed) that an earlier iteration wrote.
bool oracle_has_flow_dep(const SpeculativeLoop& l) {
  std::vector<std::int64_t> first_write(l.dim, -1);
  // Pass 1: first writer (plain writes and reductions both define).
  for (std::size_t i = 0; i < l.iterations.size(); ++i)
    for (const auto& [e, k] : l.iterations[i].ops)
      if (k != Access::kRead && first_write[e] < 0)
        first_write[e] = static_cast<std::int64_t>(i);
  // Pass 2: exposed read strictly after a write by an earlier iteration,
  // where the element is not reduction-only.
  std::vector<bool> plain(l.dim, false);
  for (const auto& it : l.iterations)
    for (const auto& [e, k] : it.ops)
      if (k != Access::kReduction) plain[e] = true;
  for (std::size_t i = 0; i < l.iterations.size(); ++i) {
    std::vector<bool> wrote_here(l.dim, false);
    for (const auto& [e, k] : l.iterations[i].ops) {
      if (k == Access::kWrite) wrote_here[e] = true;
      if (k == Access::kRead && !wrote_here[e] && first_write[e] >= 0 &&
          first_write[e] < static_cast<std::int64_t>(i) && plain[e])
        return true;
    }
  }
  return false;
}

class LrpdRandom : public ::testing::TestWithParam<int> {};

TEST_P(LrpdRandom, AgreesWithOracleOnFlowDependences) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  SpeculativeLoop l;
  l.dim = 40;
  const std::size_t n = 60;
  for (std::size_t i = 0; i < n; ++i) {
    IterationAccesses it;
    const unsigned ops = 1 + static_cast<unsigned>(rng.below(3));
    for (unsigned k = 0; k < ops; ++k) {
      const auto e = static_cast<std::uint32_t>(rng.below(l.dim));
      const double u = rng.uniform();
      if (u < 0.35)
        it.ops.emplace_back(e, Access::kRead);
      else if (u < 0.6)
        it.ops.emplace_back(e, Access::kWrite);
      else
        it.ops.emplace_back(e, Access::kReduction);
    }
    l.iterations.push_back(std::move(it));
  }
  const LrpdResult r = lrpd_test(l, pool4());
  if (oracle_has_flow_dep(l)) {
    // The test may still pass if the flow dep is intra-iteration only; the
    // oracle above excludes that, so LRPD must fail here.
    EXPECT_FALSE(r.passed()) << "seed " << GetParam();
    EXPECT_LT(r.first_dependence_sink, n);
  } else {
    EXPECT_TRUE(r.passed()) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LrpdRandom, ::testing::Range(0, 12));

// ---------------- wavefront executor equals sequential ----------------

TEST(WavefrontProperty, RandomDagExecutionMatchesSequential) {
  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    Rng rng(seed);
    constexpr std::size_t kN = 300, kDim = 64;
    SpeculativeLoop l;
    l.dim = kDim;
    struct Step {
      std::uint32_t src, dst;
    };
    std::vector<Step> steps;
    for (std::size_t i = 0; i < kN; ++i) {
      const Step st{static_cast<std::uint32_t>(rng.below(kDim)),
                    static_cast<std::uint32_t>(rng.below(kDim))};
      steps.push_back(st);
      IterationAccesses it;
      it.ops = {{st.src, Access::kRead}, {st.dst, Access::kWrite}};
      l.iterations.push_back(std::move(it));
    }
    // Sequential reference.
    std::vector<double> seq(kDim, 1.0);
    for (std::size_t i = 0; i < kN; ++i)
      seq[steps[i].dst] = seq[steps[i].src] + 1.0;
    // Wavefront-parallel execution.
    const Wavefronts w = compute_wavefronts(l);
    std::vector<double> par(kDim, 1.0);
    execute_wavefronts(w, pool4(), [&](std::size_t i) {
      par[steps[i].dst] = par[steps[i].src] + 1.0;
    });
    EXPECT_EQ(seq, par) << "seed " << seed;
  }
}

}  // namespace
}  // namespace sapp
