// Tests for feedback-guided block scheduling.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "sched/feedback_sched.hpp"
#include "sched/schedule.hpp"

namespace sapp {
namespace {

TEST(Schedule, Names) {
  EXPECT_EQ(to_string(Schedule::kStaticBlock), "static");
  EXPECT_EQ(to_string(Schedule::kFeedback), "feedback");
  EXPECT_EQ(cyclic_chunks(100, 17), 6u);
}

TEST(FeedbackGuided, InitialPartitionIsBlockSchedule) {
  FeedbackGuided fg(100, 4);
  std::size_t covered = 0;
  for (unsigned t = 0; t < 4; ++t) {
    const Range r = fg.block(t);
    covered += r.size();
    EXPECT_EQ(r.size(), 25u);
  }
  EXPECT_EQ(covered, 100u);
}

TEST(FeedbackGuided, BlocksStayContiguousAndComplete) {
  FeedbackGuided fg(997, 5, 1.0);
  Rng rng(3);
  for (int round = 0; round < 10; ++round) {
    for (unsigned t = 0; t < 5; ++t)
      fg.record(t, 0.001 + rng.uniform() * 0.01);
    fg.adapt();
    std::size_t prev = 0;
    for (unsigned t = 0; t < 5; ++t) {
      const Range r = fg.block(t);
      EXPECT_EQ(r.begin, prev);
      prev = r.end;
    }
    EXPECT_EQ(prev, 997u);
  }
}

// The core property (paper §3): with a persistently imbalanced iteration
// cost profile, repartitioning from measured block times converges toward
// equal block times.
TEST(FeedbackGuided, ConvergesOnSkewedCost) {
  constexpr std::size_t kN = 10000;
  constexpr unsigned kP = 4;
  // True cost: first 10% of iterations are 20x as expensive.
  auto iter_cost = [](std::size_t i) { return i < kN / 10 ? 20.0 : 1.0; };

  FeedbackGuided fg(kN, kP, 1.0);
  double final_imbalance = 0.0;
  for (int round = 0; round < 8; ++round) {
    double mx = 0.0, sum = 0.0;
    for (unsigned t = 0; t < kP; ++t) {
      const Range r = fg.block(t);
      double time = 0.0;
      for (std::size_t i = r.begin; i < r.end; ++i) time += iter_cost(i);
      time *= 1e-6;
      fg.record(t, time);
      mx = std::max(mx, time);
      sum += time;
    }
    final_imbalance = mx / (sum / kP);
    fg.adapt();
  }
  // Perfectly balanced would be 1.0; static blocks give ~2.75.
  EXPECT_LT(final_imbalance, 1.15);
}

TEST(FeedbackGuided, ImbalanceMetric) {
  FeedbackGuided fg(100, 2);
  fg.record(0, 0.3);
  fg.record(1, 0.1);
  EXPECT_NEAR(fg.imbalance(), 1.5, 1e-9);
}

TEST(FeedbackGuided, SmoothingDampsSingleOutlier) {
  // The same transient hiccup on thread 0 moves the cut much further with
  // smoothing 1.0 (trust only the last measurement) than with 0.3.
  constexpr std::size_t kN = 1000;
  auto cut_after_spike = [&](double smoothing) {
    FeedbackGuided fg(kN, 2, smoothing);
    fg.record(0, 1.0);   // 10x hiccup
    fg.record(1, 0.1);
    fg.adapt();
    return fg.block(0).end;
  };
  const std::size_t jumpy = cut_after_spike(1.0);
  const std::size_t damped = cut_after_spike(0.3);
  const auto dist = [&](std::size_t cut) {
    return cut > kN / 2 ? cut - kN / 2 : kN / 2 - cut;
  };
  EXPECT_LT(dist(damped), dist(jumpy));
  // Full trust: equal-cost cut under a 10:1 step profile sits at 275.
  EXPECT_NEAR(static_cast<double>(jumpy), 275.0, 5.0);
  // Damped: the cut barely moves off the middle.
  EXPECT_GT(damped, 450u);
}

TEST(FeedbackGuided, RejectsBadArguments) {
  EXPECT_DEATH(FeedbackGuided(0, 2), "iterations");
  EXPECT_DEATH(FeedbackGuided(10, 0), "thread");
  FeedbackGuided fg(10, 2);
  EXPECT_DEATH((void)fg.block(5), "tid");
  EXPECT_DEATH(fg.record(0, -1.0), "non-negative");
}

}  // namespace
}  // namespace sapp
