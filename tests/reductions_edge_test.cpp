// Edge cases and structural properties of the reduction scheme library
// beyond the main equivalence suite.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "reductions/registry.hpp"
#include "reductions/scheme_ll.hpp"
#include "reductions/scheme_lw.hpp"

namespace sapp {
namespace {

ThreadPool& pool3() {
  static ThreadPool pool(3);
  return pool;
}

ReductionInput explicit_input(std::size_t dim,
                              std::vector<std::vector<std::uint32_t>> iters,
                              unsigned flops = 0) {
  ReductionInput in;
  in.pattern.dim = dim;
  in.pattern.body_flops = flops;
  std::vector<std::uint64_t> ptr{0};
  std::vector<std::uint32_t> idx;
  for (auto& it : iters) {
    idx.insert(idx.end(), it.begin(), it.end());
    ptr.push_back(idx.size());
  }
  in.pattern.refs = Csr(std::move(ptr), std::move(idx));
  Rng rng(17);
  in.values.resize(in.pattern.num_refs());
  for (auto& v : in.values) v = rng.uniform(-3.0, 3.0);
  return in;
}

std::vector<double> reference(const ReductionInput& in) {
  std::vector<double> out(in.pattern.dim, 0.0);
  run_sequential(in, out);
  return out;
}

TEST(Edge, EmptyLoopLeavesOutputUntouched) {
  const auto in = explicit_input(8, {});
  for (SchemeKind k : candidate_scheme_kinds()) {
    std::vector<double> out(8, 2.5);
    make_scheme(k)->run(in, pool3(), out);
    for (double v : out) ASSERT_DOUBLE_EQ(v, 2.5) << to_string(k);
  }
}

TEST(Edge, RepeatedElementWithinOneIteration) {
  // Iteration 0 updates element 3 twice, element 1 once.
  const auto in = explicit_input(8, {{3, 1, 3}, {3, 3, 3}});
  const auto ref = reference(in);
  for (SchemeKind k : candidate_scheme_kinds()) {
    std::vector<double> out(8, 0.0);
    make_scheme(k)->run(in, pool3(), out);
    for (std::size_t e = 0; e < 8; ++e)
      ASSERT_NEAR(ref[e], out[e], 1e-12) << to_string(k) << " e=" << e;
  }
}

TEST(Edge, SingleElementFullContention) {
  std::vector<std::vector<std::uint32_t>> iters(500, {0u});
  const auto in = explicit_input(1, std::move(iters));
  const auto ref = reference(in);
  for (SchemeKind k : candidate_scheme_kinds()) {
    std::vector<double> out(1, 0.0);
    make_scheme(k)->run(in, pool3(), out);
    ASSERT_NEAR(ref[0], out[0], 1e-9) << to_string(k);
  }
}

TEST(Edge, MoreThreadsThanIterations) {
  const auto in = explicit_input(16, {{1, 2}, {3}, {5, 5}});
  const auto ref = reference(in);
  ThreadPool pool(7);
  for (SchemeKind k : candidate_scheme_kinds()) {
    std::vector<double> out(16, 0.0);
    make_scheme(k)->run(in, pool, out);
    for (std::size_t e = 0; e < 16; ++e)
      ASSERT_NEAR(ref[e], out[e], 1e-12) << to_string(k);
  }
}

TEST(Edge, LinkedBufferReuseWithDifferentOutputs) {
  const auto in = explicit_input(64, {{1, 5}, {5, 9}, {9, 1}, {30, 31}});
  const auto ref = reference(in);
  LinkedScheme<> ll;
  const auto plan = ll.plan(in.pattern, pool3().size());
  for (int round = 0; round < 4; ++round) {
    std::vector<double> out(64, static_cast<double>(round));
    ll.execute(plan.get(), in, pool3(), out);
    for (std::size_t e = 0; e < 64; ++e)
      ASSERT_NEAR(ref[e] + round, out[e], 1e-12) << "round " << round;
  }
}

TEST(Edge, PrivateBytesStructure) {
  const auto in = explicit_input(
      4096, std::vector<std::vector<std::uint32_t>>(512, {7, 2048}));
  ThreadPool pool(4);
  std::vector<double> out(in.pattern.dim, 0.0);
  const auto rep = make_scheme(SchemeKind::kRep)->run(in, pool, out);
  std::fill(out.begin(), out.end(), 0.0);
  const auto ll = make_scheme(SchemeKind::kLinked)->run(in, pool, out);
  std::fill(out.begin(), out.end(), 0.0);
  const auto lw = make_scheme(SchemeKind::kLocalWrite)->run(in, pool, out);
  // ll carries values + links: 1.5x rep's doubles.
  EXPECT_EQ(ll.private_bytes, rep.private_bytes * 3 / 2);
  // lw's footprint is iteration lists only, far below either.
  EXPECT_LT(lw.private_bytes, rep.private_bytes / 4);
}

TEST(Edge, LwOwnerPartitionCoversRange) {
  for (unsigned P : {1u, 2u, 3u, 8u}) {
    const std::size_t dim = 1000;
    std::vector<std::size_t> count(P, 0);
    for (std::size_t e = 0; e < dim; ++e) {
      const unsigned o = LocalWriteScheme<>::owner_of(e, dim, P);
      ASSERT_LT(o, P);
      ++count[o];
    }
    // Block partition: each owner's share within one block size.
    const std::size_t blk = (dim + P - 1) / P;
    for (unsigned t = 0; t < P; ++t) EXPECT_LE(count[t], blk);
  }
}

TEST(Edge, SequentialSchemeIsExactReference) {
  const auto in = explicit_input(32, {{1, 2, 3}, {3, 2, 1}, {0, 31}});
  const auto ref = reference(in);
  std::vector<double> out(32, 0.0);
  make_scheme(SchemeKind::kSeq)->run(in, pool3(), out);
  for (std::size_t e = 0; e < 32; ++e)
    ASSERT_DOUBLE_EQ(ref[e], out[e]);  // identical order -> bit equal
}

TEST(Edge, IterationScaleDeterministicAndBounded) {
  for (unsigned flops : {0u, 1u, 16u, 64u}) {
    for (std::uint64_t i : {0ull, 1ull, 1023ull, 1024ull, 999999ull}) {
      const double a = iteration_scale(i, flops);
      const double b = iteration_scale(i, flops);
      EXPECT_EQ(a, b);
      EXPECT_GT(a, 0.0);
      EXPECT_LT(a, 4.0);
    }
  }
}

TEST(Edge, RunValidatesArguments) {
  const auto in = explicit_input(8, {{1}});
  std::vector<double> wrong_size(4, 0.0);
  EXPECT_DEATH(make_scheme(SchemeKind::kRep)->run(in, pool3(), wrong_size),
               "output size");
  ReductionInput bad = in;
  bad.values.pop_back();
  std::vector<double> out(8, 0.0);
  EXPECT_DEATH(make_scheme(SchemeKind::kRep)->run(bad, pool3(), out),
               "mismatch");
}

TEST(Edge, ExecuteRequiresMatchingPlan) {
  const auto in = explicit_input(8, {{1}, {2}});
  const auto sel = make_scheme(SchemeKind::kSelective);
  const auto plan2 = sel->plan(in.pattern, 2);
  ThreadPool pool4(4);
  std::vector<double> out(8, 0.0);
  EXPECT_DEATH(sel->execute(plan2.get(), in, pool4, out),
               "different thread count");
}

TEST(Edge, LwRefusesIllegalPattern) {
  auto in = explicit_input(8, {{1}, {2}});
  in.pattern.iteration_replication_legal = false;
  const auto lw = make_scheme(SchemeKind::kLocalWrite);
  EXPECT_FALSE(lw->applicable(in.pattern));
  std::vector<double> out(8, 0.0);
  EXPECT_DEATH(lw->run(in, pool3(), out), "not legal");
}

}  // namespace
}  // namespace sapp
