// ShardedDecisionStore contract: stable sharding, persistence round
// trips, dirty-set coalescing, and — the load-bearing part — crash
// atomicity. A flush abandoned at any point (mid temp-file write, or
// after the temp write but before the rename) must leave the on-disk
// shard either the old complete document or the new complete document,
// never a torn one, and a store loading the directory afterwards must
// warm-start from whichever survived. The failure hook injects those
// crashes deterministically (decision_store.hpp).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <unistd.h>
#include <vector>

#include "core/decision_store.hpp"

namespace sapp {
namespace {

namespace fs = std::filesystem;

class DecisionStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("sapp_store_test." + std::to_string(::getpid()) + "." +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

CachedDecision decision(const std::string& site, std::uint64_t invocations,
                        SchemeKind scheme = SchemeKind::kRep) {
  CachedDecision d;
  d.site = site;
  d.scheme = scheme;
  d.threads = 4;
  d.signature.dim = 1000;
  d.signature.iterations = 500;
  d.signature.refs = 1000;
  d.signature.sampled_index_sum = 12345;
  d.predicted_total_s = 0.001;
  d.phase_times_s = {0.0011, 0.0012};
  d.invocations = invocations;
  d.rationale = "test entry";
  return d;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

TEST_F(DecisionStoreTest, FingerprintIsStableAndSpreadsSites) {
  // FNV-1a reference value: shard files outlive builds, so the
  // fingerprint must be this exact function forever, not std::hash.
  EXPECT_EQ(ShardedDecisionStore::fingerprint(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(ShardedDecisionStore::fingerprint("a"), 0xaf63dc4c8601ec8cull);

  ShardedDecisionStore store({.dir = "", .shards = 16});
  std::vector<int> used(16, 0);
  for (int i = 0; i < 200; ++i)
    used[store.shard_of("App/loop" + std::to_string(i))] = 1;
  int nonempty = 0;
  for (int u : used) nonempty += u;
  EXPECT_GE(nonempty, 12) << "200 sites should spread across most shards";
}

TEST_F(DecisionStoreTest, MemoryOnlyStoreServesPutGetWithoutFiles) {
  ShardedDecisionStore store({.dir = "", .shards = 8});
  EXPECT_FALSE(store.persistent());
  store.put(decision("A/x", 3));
  store.put(decision("A/y", 5, SchemeKind::kSelective));
  ASSERT_TRUE(store.get("A/x").has_value());
  EXPECT_EQ(store.get("A/x")->invocations, 3u);
  EXPECT_EQ(store.get("A/y")->scheme, SchemeKind::kSelective);
  EXPECT_FALSE(store.get("A/z").has_value());
  EXPECT_EQ(store.size(), 2u);
  // Not persistent: nothing to flush, nothing marked dirty.
  store.mark_dirty("A/x");
  EXPECT_EQ(store.dirty_count(), 0u);
  EXPECT_EQ(store.drain(), 0u);
}

TEST_F(DecisionStoreTest, PersistenceRoundTripsAcrossStores) {
  {
    ShardedDecisionStore store({.dir = dir_, .shards = 4});
    std::string err;
    EXPECT_EQ(store.load(&err), 0u) << err;  // cold start, creates dir
    for (int i = 0; i < 20; ++i)
      store.put(decision("App/s" + std::to_string(i),
                         static_cast<std::uint64_t>(i + 1)));
    EXPECT_EQ(store.dirty_count(), 20u);
    EXPECT_GT(store.drain(), 0u);
    EXPECT_EQ(store.dirty_count(), 0u);
  }
  ShardedDecisionStore reloaded({.dir = dir_, .shards = 4});
  std::string err;
  EXPECT_EQ(reloaded.load(&err), 20u) << err;
  for (int i = 0; i < 20; ++i) {
    auto got = reloaded.get("App/s" + std::to_string(i));
    ASSERT_TRUE(got.has_value()) << i;
    EXPECT_EQ(got->invocations, static_cast<std::uint64_t>(i + 1));
  }
  EXPECT_EQ(reloaded.merged().size(), 20u);
}

TEST_F(DecisionStoreTest, DrainRewritesOnlyDirtyShards) {
  ShardedDecisionStore store({.dir = dir_, .shards = 8});
  (void)store.load();
  for (int i = 0; i < 32; ++i)
    store.put(decision("App/s" + std::to_string(i), 1));
  const std::size_t first = store.drain();
  EXPECT_GT(first, 0u);
  // One site re-dirtied: exactly its home shard is rewritten.
  store.mark_dirty("App/s7");
  EXPECT_EQ(store.dirty_count(), 1u);
  EXPECT_EQ(store.drain(), 1u);
  EXPECT_EQ(store.flushes(), first + 1);
  // Nothing dirty: drain is free.
  EXPECT_EQ(store.drain(), 0u);
}

TEST_F(DecisionStoreTest, SnapshotterRefreshesDirtySitesAtFlushTime) {
  ShardedDecisionStore store({.dir = dir_, .shards = 2});
  (void)store.load();
  store.put(decision("App/a", 1));
  store.put(decision("App/b", 1));
  const auto snap = [](const std::string& site, CachedDecision& out) {
    if (site != "App/a") return false;  // b: keep the stored entry
    out = decision(site, 99);
    return true;
  };
  EXPECT_GT(store.drain(snap), 0u);
  EXPECT_EQ(store.get("App/a")->invocations, 99u);
  EXPECT_EQ(store.get("App/b")->invocations, 1u);

  ShardedDecisionStore reloaded({.dir = dir_, .shards = 2});
  (void)reloaded.load();
  EXPECT_EQ(reloaded.get("App/a")->invocations, 99u);
  EXPECT_EQ(reloaded.get("App/b")->invocations, 1u);
}

// The satellite this file exists for: a crash at either flush phase
// leaves the shard file old-or-new-complete, never torn, and the next
// drain retries the lost work.
TEST_F(DecisionStoreTest, AbandonedFlushLeavesOldCompleteFile) {
  for (const auto phase : {ShardedDecisionStore::FlushPhase::kTempWrite,
                           ShardedDecisionStore::FlushPhase::kRename}) {
    const std::string dir =
        dir_ + (phase == ShardedDecisionStore::FlushPhase::kTempWrite ? ".tw"
                                                                      : ".rn");
    ShardedDecisionStore store({.dir = dir, .shards = 1});
    (void)store.load();
    store.put(decision("App/a", 1));
    ASSERT_EQ(store.drain(), 1u);
    const std::string old_doc = read_file(store.shard_path(0));
    ASSERT_FALSE(old_doc.empty());

    // Crash every flush at `phase`: the visible file must not change.
    store.set_flush_failure_hook(
        [phase](std::size_t, ShardedDecisionStore::FlushPhase p) {
          return p == phase;
        });
    store.put(decision("App/a", 50));
    store.put(decision("App/b", 2));
    EXPECT_EQ(store.drain(), 0u);
    EXPECT_GE(store.flush_failures(), 1u);
    EXPECT_EQ(read_file(store.shard_path(0)), old_doc)
        << "abandoned flush must leave the old complete document";
    // Whatever is on disk warm-starts a fresh store (the .tmp leftover —
    // torn for kTempWrite, complete for kRename — is ignored).
    {
      ShardedDecisionStore crashed({.dir = dir, .shards = 1});
      std::string err;
      EXPECT_EQ(crashed.load(&err), 1u) << err;
      ASSERT_TRUE(crashed.get("App/a").has_value());
      EXPECT_EQ(crashed.get("App/a")->invocations, 1u);
      EXPECT_FALSE(crashed.get("App/b").has_value());
    }

    // The failed sites stayed dirty: clearing the fault and draining
    // again lands the new document atomically.
    store.set_flush_failure_hook(nullptr);
    EXPECT_EQ(store.drain(), 1u);
    ShardedDecisionStore recovered({.dir = dir, .shards = 1});
    (void)recovered.load();
    EXPECT_EQ(recovered.get("App/a")->invocations, 50u);
    ASSERT_TRUE(recovered.get("App/b").has_value());
    EXPECT_EQ(recovered.get("App/b")->invocations, 2u);
    fs::remove_all(dir);
  }
}

TEST_F(DecisionStoreTest, MalformedShardIsAColdStartNotAnError) {
  {
    ShardedDecisionStore store({.dir = dir_, .shards = 2});
    (void)store.load();
    store.put(decision("App/a", 7));
    store.put(decision("App/b", 8));
    (void)store.drain();
  }
  // Corrupt one shard file wholesale; the other must still load.
  const std::size_t corrupt =
      ShardedDecisionStore({.dir = dir_, .shards = 2}).shard_of("App/a");
  {
    std::ofstream f(dir_ + "/shard-" + std::to_string(corrupt) + ".json");
    f << "{ not json";
  }
  ShardedDecisionStore reloaded({.dir = dir_, .shards = 2});
  std::string err;
  const std::size_t n = reloaded.load(&err);
  if (reloaded.shard_of("App/a") == reloaded.shard_of("App/b")) {
    EXPECT_EQ(n, 0u);  // both entries lived in the corrupted shard
  } else {
    EXPECT_EQ(n, 1u);
    EXPECT_TRUE(reloaded.get("App/b").has_value());
  }
  EXPECT_FALSE(err.empty()) << "skipped shards should be described";
}

TEST_F(DecisionStoreTest, EntriesRehomeWhenShardCountChanges) {
  {
    ShardedDecisionStore store({.dir = dir_, .shards = 1});
    (void)store.load();
    for (int i = 0; i < 16; ++i)
      store.put(decision("App/s" + std::to_string(i), 1));
    (void)store.drain();
  }
  // Same directory, eight shards: every entry must surface, and a drain
  // must migrate the layout so a third store finds them in home shards.
  {
    ShardedDecisionStore store({.dir = dir_, .shards = 8});
    std::string err;
    EXPECT_EQ(store.load(&err), 16u) << err;
    for (int i = 0; i < 16; ++i)
      EXPECT_TRUE(store.get("App/s" + std::to_string(i)).has_value()) << i;
    EXPECT_GT(store.dirty_count(), 0u) << "re-homed entries marked dirty";
    EXPECT_GT(store.drain(), 0u);
  }
  ShardedDecisionStore reloaded({.dir = dir_, .shards = 8});
  EXPECT_EQ(reloaded.load(), 16u);
  for (int i = 0; i < 16; ++i) {
    const std::string site = "App/s" + std::to_string(i);
    const std::string home = read_file(reloaded.shard_path(reloaded.shard_of(site)));
    EXPECT_NE(home.find("\"" + site + "\""), std::string::npos)
        << site << " should live in its home shard after migration";
  }
}

TEST_F(DecisionStoreTest, ShardCountIsClamped) {
  EXPECT_EQ(ShardedDecisionStore({.dir = "", .shards = 0}).shard_count(), 1u);
  EXPECT_EQ(ShardedDecisionStore({.dir = "", .shards = 10000}).shard_count(),
            256u);
}

}  // namespace
}  // namespace sapp
