// Differential scheme-conformance suite.
//
// Randomized (pattern x operator x thread-count) cases check every scheme
// in the library against the sequential reference. The explicit tolerance
// policy, per scheme:
//
//   * seq, and every scheme under the exact operators max/min — bitwise
//     equal to the sequential reference (comparisons never round, so any
//     combine order yields the identical double);
//   * lw under sum — bitwise equal to the sequential reference: each
//     element is written only by its owner thread, which replays all
//     relevant iterations in ascending order, i.e. exactly seq's
//     per-element accumulation order;
//   * rep, sel, ll, hash under sum — deterministic by contract (PR 3):
//     bitwise equal to the ascending-thread-order fold reference (per
//     element, per-thread partials computed under the static block
//     schedule and folded in ascending thread order), which is itself
//     checked against seq under the summation error bound below;
//   * atomic, critical under sum — combine order is nondeterministic by
//     construction, so the check is ULP-style error-bounded: per element,
//     |got - seq| <= (4 + n_e) * eps * Sigma|contribution|, the standard
//     bound for reassociated summation of n_e terms (scaled by the
//     absolute-value sum, which dominates cancellation).
//
// 240 cases (>= 200 per the suite's contract) sweep dimension, iteration
// count, references per iteration (including zero), Zipf skew, body flops,
// lw legality, thread counts {1,2,3,4,8, SAPP_THREADS} and the operators
// {sum, max, min}. The case generator lives in differential_cases.hpp,
// shared with checker_test.cpp (zero-false-positive sweep).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "differential_cases.hpp"
#include "reductions/kernels.hpp"
#include "reductions/registry.hpp"
#include "reductions/scheme_atomic.hpp"
#include "reductions/scheme_critical.hpp"
#include "reductions/scheme_hash.hpp"
#include "reductions/scheme_ll.hpp"
#include "reductions/scheme_lw.hpp"
#include "reductions/scheme_rep.hpp"
#include "reductions/scheme_sel.hpp"
#include "reductions/scheme_seq.hpp"

namespace sapp {
namespace {

using difftest::CaseParams;
using difftest::OpKind;
using difftest::build_input;
using difftest::derive_case;
using difftest::op_name;

template <typename Op>
std::unique_ptr<Scheme> make_scheme_op(SchemeKind k) {
  switch (k) {
    case SchemeKind::kSeq: return nullptr;  // handled by the reference
    case SchemeKind::kAtomic: return std::make_unique<AtomicScheme<Op>>();
    case SchemeKind::kCritical:
      return std::make_unique<CriticalScheme<Op>>();
    case SchemeKind::kRep: return std::make_unique<RepScheme<Op>>();
    case SchemeKind::kLocalWrite:
      return std::make_unique<LocalWriteScheme<Op>>();
    case SchemeKind::kLinked: return std::make_unique<LinkedScheme<Op>>();
    case SchemeKind::kSelective:
      return std::make_unique<SelectiveScheme<Op>>();
    case SchemeKind::kHash: return std::make_unique<HashScheme<Op>>();
  }
  return nullptr;
}

/// Sequential reference under Op: out[e] = Op(out[e], contribution) in
/// iteration order — what SeqScheme computes for sum, generalized.
template <typename Op>
void op_sequential(const ReductionInput& in, std::vector<double>& out) {
  const auto& ptr = in.pattern.refs.row_ptr();
  const auto& idx = in.pattern.refs.indices();
  for (std::size_t i = 0; i < in.pattern.iterations(); ++i) {
    const double s = iteration_scale(i, in.pattern.body_flops);
    for (std::uint64_t j = ptr[i]; j < ptr[i + 1]; ++j)
      out[idx[j]] = Op::apply(out[idx[j]], in.values[j] * s);
  }
}

/// Ascending-thread-order fold reference under Op: per-thread partials
/// under the static block schedule, touched partials folded into out in
/// ascending thread order — the combine order rep/sel/ll/hash promise.
template <typename Op>
void op_thread_fold(const ReductionInput& in, unsigned P,
                    std::vector<double>& out) {
  const auto& ptr = in.pattern.refs.row_ptr();
  const auto& idx = in.pattern.refs.indices();
  std::vector<std::vector<double>> val(
      P, std::vector<double>(in.pattern.dim, Op::neutral()));
  std::vector<std::vector<bool>> touched(
      P, std::vector<bool>(in.pattern.dim, false));
  for (unsigned t = 0; t < P; ++t) {
    const Range rg = static_block(in.pattern.iterations(), t, P);
    for (std::size_t i = rg.begin; i < rg.end; ++i) {
      const double s = iteration_scale(i, in.pattern.body_flops);
      for (std::uint64_t j = ptr[i]; j < ptr[i + 1]; ++j) {
        const std::uint32_t e = idx[j];
        val[t][e] = Op::apply(val[t][e], in.values[j] * s);
        touched[t][e] = true;
      }
    }
  }
  for (std::size_t e = 0; e < in.pattern.dim; ++e)
    for (unsigned t = 0; t < P; ++t)
      if (touched[t][e]) out[e] = Op::apply(out[e], val[t][e]);
}

/// Per-element |contribution| sum and count, for the summation error
/// bound on the order-nondeterministic schemes.
void contribution_bounds(const ReductionInput& in, std::vector<double>& abs,
                         std::vector<std::size_t>& cnt) {
  const auto& ptr = in.pattern.refs.row_ptr();
  const auto& idx = in.pattern.refs.indices();
  for (std::size_t i = 0; i < in.pattern.iterations(); ++i) {
    const double s = iteration_scale(i, in.pattern.body_flops);
    for (std::uint64_t j = ptr[i]; j < ptr[i + 1]; ++j) {
      abs[idx[j]] += std::abs(in.values[j] * s);
      ++cnt[idx[j]];
    }
  }
}

void expect_bitwise(const std::vector<double>& got,
                    const std::vector<double>& ref, const std::string& what) {
  ASSERT_EQ(got.size(), ref.size()) << what;
  for (std::size_t e = 0; e < got.size(); ++e)
    ASSERT_EQ(std::memcmp(&got[e], &ref[e], sizeof(double)), 0)
        << what << ": element " << e << ": " << got[e] << " vs " << ref[e];
}

void expect_error_bounded(const std::vector<double>& got,
                          const std::vector<double>& ref,
                          const std::vector<double>& abs,
                          const std::vector<std::size_t>& cnt,
                          const std::string& what) {
  constexpr double eps = std::numeric_limits<double>::epsilon();
  for (std::size_t e = 0; e < got.size(); ++e) {
    const double bound =
        (4.0 + static_cast<double>(cnt[e])) * eps * abs[e] +
        std::numeric_limits<double>::denorm_min();
    ASSERT_LE(std::abs(got[e] - ref[e]), bound)
        << what << ": element " << e << ": " << got[e] << " vs " << ref[e]
        << " (n=" << cnt[e] << ", abs-sum=" << abs[e] << ")";
  }
}

template <typename Op>
void run_case(const CaseParams& c, const ReductionInput& in, ThreadPool& pool,
              int index) {
  const std::string tag = "case " + std::to_string(index) + " (dim=" +
                          std::to_string(c.dim) + ", iters=" +
                          std::to_string(c.iterations) + ", P=" +
                          std::to_string(c.threads) + ", op=" +
                          op_name(c.op) + ")";
  const bool exact_op = c.op != OpKind::kSum;

  std::vector<double> ref_seq(in.pattern.dim, Op::neutral());
  op_sequential<Op>(in, ref_seq);
  std::vector<double> ref_fold(in.pattern.dim, Op::neutral());
  op_thread_fold<Op>(in, pool.size(), ref_fold);

  std::vector<double> abs(in.pattern.dim, 0.0);
  std::vector<std::size_t> cnt(in.pattern.dim, 0);
  if (!exact_op) {
    contribution_bounds(in, abs, cnt);
    // The fold reference itself must agree with seq under the summation
    // bound — otherwise the bitwise checks below would pin a wrong value.
    expect_error_bounded(ref_fold, ref_seq, abs, cnt, tag + " fold-vs-seq");
  } else {
    // Exact operators: reassociation cannot change the result at all.
    expect_bitwise(ref_fold, ref_seq, tag + " fold-vs-seq");
  }

  // seq itself: the library scheme must equal the reference (sum only —
  // SeqScheme is the double/sum instantiation).
  if (c.op == OpKind::kSum) {
    SeqScheme seq;
    std::vector<double> out(in.pattern.dim, 0.0);
    (void)seq.run(in, pool, out);
    expect_bitwise(out, ref_seq, tag + " seq");
  }

  for (const SchemeKind kind : all_scheme_kinds()) {
    if (kind == SchemeKind::kSeq) continue;
    const auto scheme = make_scheme_op<Op>(kind);
    ASSERT_NE(scheme, nullptr);
    if (!scheme->applicable(in.pattern)) {
      EXPECT_EQ(kind, SchemeKind::kLocalWrite) << tag;
      EXPECT_FALSE(c.lw_legal) << tag;
      continue;
    }
    std::vector<double> out(in.pattern.dim, Op::neutral());
    (void)scheme->run(in, pool, out);
    const std::string what = tag + " " + std::string(to_string(kind));
    if (exact_op) {
      expect_bitwise(out, ref_seq, what);
      continue;
    }
    switch (kind) {
      case SchemeKind::kRep:
      case SchemeKind::kSelective:
      case SchemeKind::kLinked:
      case SchemeKind::kHash:
        expect_bitwise(out, ref_fold, what);
        break;
      case SchemeKind::kLocalWrite:
        expect_bitwise(out, ref_seq, what);
        break;
      case SchemeKind::kAtomic:
      case SchemeKind::kCritical:
        expect_error_bounded(out, ref_seq, abs, cnt, what);
        break;
      default:
        FAIL() << what << ": unexpected scheme kind";
    }
  }
}

/// The full 240-case sweep under whatever kernel backend is active. All
/// deterministic schemes are checked bitwise against references computed
/// in plain C++ here in the test, so a pass under a backend proves that
/// backend reproduces the documented combine order exactly — the
/// scalar-vs-SIMD agreement bound is therefore zero ULPs, not an epsilon.
void run_all_cases() {
  constexpr int kCases = 240;
  std::map<unsigned, std::unique_ptr<ThreadPool>> pools;
  for (int i = 0; i < kCases; ++i) {
    const CaseParams c = derive_case(i);
    const ReductionInput in = build_input(c, i);
    auto& pool = pools[c.threads];
    if (!pool) pool = std::make_unique<ThreadPool>(c.threads);
    switch (c.op) {
      case OpKind::kSum: run_case<SumOp<double>>(c, in, *pool, i); break;
      case OpKind::kMax: run_case<MaxOp<double>>(c, in, *pool, i); break;
      case OpKind::kMin: run_case<MinOp<double>>(c, in, *pool, i); break;
    }
    if (::testing::Test::HasFatalFailure()) return;  // case index in message
  }
}

TEST(SchemeDifferential, RandomizedPatternOperatorThreadSweep) {
  // Dispatched backend (or the SAPP_BACKEND override — the CI
  // forced-scalar leg runs this test with SAPP_BACKEND=scalar).
  run_all_cases();
}

TEST(SchemeDifferential, EveryUsableBackendPassesTheSweep) {
  const kernels::Backend original = kernels::active_backend();
  for (const kernels::Backend b : kernels::usable_backends()) {
    if (b == original) continue;  // covered by the sweep test above
    SCOPED_TRACE(std::string("backend ") + std::string(kernels::to_string(b)));
    ASSERT_TRUE(kernels::set_backend(b));
    run_all_cases();
    if (HasFatalFailure()) break;
  }
  ASSERT_TRUE(kernels::set_backend(original));
}

TEST(SchemeDifferential, RepeatedRunsAreBitwiseDeterministicPerBackend) {
  const kernels::Backend original = kernels::active_backend();
  std::map<unsigned, std::unique_ptr<ThreadPool>> pools;
  for (int i = 0; i < 240; i += 24) {
    const CaseParams c = derive_case(i);
    if (c.op != OpKind::kSum) continue;  // rounding only moves under sum
    const ReductionInput in = build_input(c, i);
    auto& pool = pools[c.threads];
    if (!pool) pool = std::make_unique<ThreadPool>(c.threads);
    for (const kernels::Backend b : kernels::usable_backends()) {
      ASSERT_TRUE(kernels::set_backend(b));
      for (const SchemeKind kind :
           {SchemeKind::kRep, SchemeKind::kSelective}) {
        const auto scheme = make_scheme_op<SumOp<double>>(kind);
        std::vector<double> first(in.pattern.dim, 0.0);
        (void)scheme->run(in, *pool, first);
        std::vector<double> second(in.pattern.dim, 0.0);
        (void)scheme->run(in, *pool, second);
        expect_bitwise(second, first,
                       std::string("case ") + std::to_string(i) + " " +
                           std::string(to_string(kind)) + " under " +
                           std::string(kernels::to_string(b)));
      }
    }
  }
  ASSERT_TRUE(kernels::set_backend(original));
}

}  // namespace
}  // namespace sapp
