// Deeper protocol scenarios for the CC-NUMA machine: directory state
// transitions, MSHR/store-buffer backpressure, non-coherence of reduction
// lines, inclusion, and background-combine quiescence.
#include <gtest/gtest.h>

#include "sim/machine.hpp"

namespace sapp::sim {
namespace {

MachineConfig tiny(unsigned nodes) {
  MachineConfig c = MachineConfig::paper(nodes);
  c.l1_bytes = 512;   // 8 lines
  c.l2_bytes = 2048;  // 32 frames, 2-way -> 16 sets
  c.l2_assoc = 2;
  c.metadata_loads = false;
  c.barrier_base_cycles = 0;
  return c;
}

Op load(Addr a) { return Op{.kind = Op::Kind::kLoad, .addr = a}; }
Op store(Addr a) { return Op{.kind = Op::Kind::kStore, .addr = a}; }
Op loadred(Addr a) { return Op{.kind = Op::Kind::kLoadRed, .addr = a}; }
Op storered(Addr a, double v) {
  return Op{.kind = Op::Kind::kStoreRed, .addr = a, .value = v};
}
Op barrier(const char* l) { return Op{.kind = Op::Kind::kBarrier, .label = l}; }

std::vector<std::unique_ptr<TraceCursor>> cursors(
    std::vector<std::vector<Op>> per_proc) {
  std::vector<std::unique_ptr<TraceCursor>> cs;
  for (auto& ops : per_proc)
    cs.push_back(std::make_unique<VectorCursor>(std::move(ops)));
  return cs;
}

TEST(Protocol, WritebackMakesMemoryCurrentNoRecallAfter) {
  // Proc 0 dirties a line, then evicts it by conflict; proc 1's later read
  // must NOT need a recall (memory is current after the write-back).
  auto cfg = tiny(2);
  Machine m(cfg, Mode::kSw, 64);
  std::vector<Op> p0;
  p0.push_back(store(0));
  // Two more lines in the same set evict line 0 (16 sets, 64 B lines:
  // stride must respect the hashed index — use invalidate-free approach:
  // plenty of conflicting lines).
  for (int k = 1; k <= 40; ++k) p0.push_back(store(k * 64));
  p0.push_back(barrier("w"));
  p0.push_back(barrier("r"));
  std::vector<Op> p1{barrier("w"), load(0), barrier("r")};
  auto r = m.run(cursors({std::move(p0), std::move(p1)}));
  EXPECT_GT(r.counters.writebacks_plain, 0u);
  // The dir entry for line 0 is Shared with p1 (after its read) or was
  // Uncached before it; no recall should have been necessary if line 0 was
  // among the written-back ones.
  const DirEntry* e = m.directory().peek(0);
  ASSERT_NE(e, nullptr);
  EXPECT_NE(e->state, DirState::kExclusive);
}

TEST(Protocol, UpgradeOnStoreToSharedLine) {
  auto cfg = tiny(2);
  Machine m(cfg, Mode::kSw, 64);
  // Both read (Shared, 2 sharers), then proc 0 stores -> invalidation.
  auto r = m.run(cursors({
      {load(0), barrier("rd"), store(0), barrier("wr")},
      {load(0), barrier("rd"), barrier("wr")},
  }));
  EXPECT_GE(r.counters.invalidations, 1u);
  const DirEntry* e = m.directory().peek(0);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, DirState::kExclusive);
  EXPECT_EQ(e->owner, 0u);
}

TEST(Protocol, ReductionLinesAreNonCoherent) {
  // Both procs hold reduction copies of the same line at once: no
  // invalidations, no recalls — the essence of §5.1.1's reduction state.
  auto cfg = tiny(2);
  Machine m(cfg, Mode::kHw, 64);
  auto r = m.run(cursors({
      {loadred(0), storered(0, 1.0), barrier("x")},
      {loadred(0), storered(0, 2.0), barrier("x")},
  }));
  EXPECT_EQ(r.counters.invalidations, 0u);
  EXPECT_EQ(r.counters.recalls, 0u);
  EXPECT_EQ(r.counters.red_fills, 2u);
}

TEST(Protocol, L2EvictionBackInvalidatesL1) {
  // After line 0 is evicted from L2 by conflicts, a re-access must be a
  // fresh global miss (the L1 tag cannot linger).
  auto cfg = tiny(1);
  Machine m(cfg, Mode::kSw, 64);
  std::vector<Op> ops;
  ops.push_back(load(0));
  for (int k = 1; k <= 64; ++k) ops.push_back(load(k * 64));
  ops.push_back(load(0));
  ops.push_back(barrier("x"));
  auto r = m.run(cursors({std::move(ops)}));
  // 66 loads, all distinct lines except the repeat; if the L1 tag had
  // survived, misses would be 65.
  EXPECT_EQ(r.counters.local_misses, 66u);
}

TEST(Protocol, LoadMshrBackpressureSlowsMissStreams) {
  auto run_with = [&](unsigned slots) {
    auto cfg = tiny(1);
    cfg.pending_loads = slots;
    Machine m(cfg, Mode::kSw, 64);
    std::vector<Op> ops;
    for (int k = 0; k < 200; ++k) ops.push_back(load(k * 64));
    ops.push_back(barrier("x"));
    return m.run(cursors({std::move(ops)})).total_cycles;
  };
  EXPECT_GT(run_with(1), run_with(8));
}

TEST(Protocol, StoreBufferBackpressureSlowsStoreStreams) {
  auto run_with = [&](unsigned slots) {
    auto cfg = tiny(1);
    cfg.pending_stores = slots;
    Machine m(cfg, Mode::kSw, 64);
    std::vector<Op> ops;
    for (int k = 0; k < 200; ++k) ops.push_back(store(k * 64));
    ops.push_back(barrier("x"));
    return m.run(cursors({std::move(ops)})).total_cycles;
  };
  EXPECT_GT(run_with(1), run_with(16));
}

TEST(Protocol, BackgroundCombineDelaysBarrier) {
  // A slow FP unit stretches the post-loop barrier (combines must finish).
  auto run_with = [&](unsigned ii) {
    auto cfg = tiny(1);
    cfg.fp_initiation = ii;
    Machine m(cfg, Mode::kHw, 2048);
    std::vector<Op> ops;
    for (int k = 0; k < 100; ++k) {
      ops.push_back(loadred(k * 64));
      ops.push_back(storered(k * 64, 1.0));
    }
    ops.push_back(Op{.kind = Op::Kind::kFlush});
    ops.push_back(barrier("merge"));
    return m.run(cursors({std::move(ops)})).total_cycles;
  };
  EXPECT_GT(run_with(30), run_with(3));
}

TEST(Protocol, FirstTouchAssignsDistinctHomes) {
  // Two procs touching different pages produce only local misses.
  auto cfg = tiny(2);
  Machine m(cfg, Mode::kSw, 4096);
  auto r = m.run(cursors({
      {load(0), load(64), barrier("x")},
      {load(8192), load(8256), barrier("x")},  // a different page
  }));
  EXPECT_EQ(r.counters.remote_misses, 0u);
  EXPECT_EQ(r.counters.local_misses, 4u);
}

TEST(Protocol, VectorCursorEndsForever) {
  VectorCursor c({load(0)});
  EXPECT_EQ(c.next().kind, Op::Kind::kLoad);
  EXPECT_EQ(c.next().kind, Op::Kind::kEnd);
  EXPECT_EQ(c.next().kind, Op::Kind::kEnd);
}

TEST(Protocol, RejectsTooManyNodes) {
  EXPECT_DEATH(Machine(MachineConfig::paper(33), Mode::kSw, 16),
               "32 nodes");
}

TEST(Protocol, RejectsOversizedLines) {
  auto cfg = MachineConfig::paper(1);
  cfg.line_bytes = 256;
  EXPECT_DEATH(Machine(cfg, Mode::kSw, 16), "data capacity");
}

TEST(Protocol, MismatchedCursorCountDies) {
  Machine m(tiny(2), Mode::kSw, 16);
  std::vector<std::unique_ptr<TraceCursor>> one;
  one.push_back(std::make_unique<VectorCursor>(std::vector<Op>{}));
  EXPECT_DEATH(m.run(std::move(one)), "one cursor per node");
}

}  // namespace
}  // namespace sapp::sim
