// Property tests of the cluster-level machine model (sim/comm.hpp,
// sim/cluster.hpp, core/distributed_cost.hpp): fabric port contention,
// bitwise run-to-run determinism, single-node degeneration to the
// intra-node cost surface, zero-size and one-element-per-node edge cases,
// and bandwidth monotonicity of every strategy.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "core/distributed_cost.hpp"
#include "sim/cluster.hpp"
#include "workloads/workload.hpp"

namespace sapp::sim {
namespace {

const MachineCoeffs kMc = MachineCoeffs::defaults();

ClusterConfig cluster_of(unsigned nodes, LinkConfig link = {}) {
  return {nodes, 8, link, kMc};
}

ReductionInput synth_input(std::size_t dim, std::size_t iterations,
                          unsigned refs_per_iter, std::uint64_t seed) {
  workloads::SynthParams p;
  p.dim = dim;
  p.distinct = std::max<std::size_t>(1, dim / 3);
  p.iterations = iterations;
  p.refs_per_iter = refs_per_iter;
  p.zipf_theta = 0.3;
  p.locality = 0.6;
  p.sort_iterations = false;
  p.body_flops = 3;
  p.seed = seed;
  return workloads::make_synthetic(p);
}

bool bitwise_equal(const std::vector<double>& a,
                   const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

TEST(CommFabric, ArrivalIsReadyPlusOccupancyPlusLatency) {
  const LinkConfig link{1e-6, 1e9, 2e-6};
  CommFabric f(3, link);
  // occupancy = 2us software + 1000 B / 1 GB/s = 1us -> 3us on the ports.
  EXPECT_DOUBLE_EQ(f.transfer(0, 1, 1000, 0.0), 4e-6);
  EXPECT_EQ(f.messages(), 1u);
  EXPECT_EQ(f.bytes_on_wire(), 1000u);
}

TEST(CommFabric, SourcePortSerializesDistinctDestinations) {
  const LinkConfig link{1e-6, 1e9, 2e-6};
  CommFabric f(3, link);
  ASSERT_DOUBLE_EQ(f.transfer(0, 1, 1000, 0.0), 4e-6);
  // Same source: waits for the send port (busy until 3us), then 3us + 1us.
  EXPECT_DOUBLE_EQ(f.transfer(0, 2, 1000, 0.0), 7e-6);
}

TEST(CommFabric, DestinationPortSerializesDistinctSources) {
  const LinkConfig link{1e-6, 1e9, 2e-6};
  CommFabric f(3, link);
  ASSERT_DOUBLE_EQ(f.transfer(0, 1, 1000, 0.0), 4e-6);
  // Different source, same destination: waits for 1's receive port.
  EXPECT_DOUBLE_EQ(f.transfer(2, 1, 1000, 0.0), 7e-6);
}

TEST(CommFabric, NodeLocalTransferIsFree) {
  CommFabric f(2, {});
  EXPECT_DOUBLE_EQ(f.transfer(1, 1, 1 << 20, 0.125), 0.125);
  EXPECT_EQ(f.messages(), 0u);
  EXPECT_EQ(f.bytes_on_wire(), 0u);
}

TEST(OwnerOf, BlockPartitionCoversTheArray) {
  // dim=10 over 4 nodes: blocks of 3 -> owners 0,0,0,1,1,1,2,2,2,3.
  const unsigned expect[10] = {0, 0, 0, 1, 1, 1, 2, 2, 2, 3};
  for (std::size_t e = 0; e < 10; ++e)
    EXPECT_EQ(owner_of(e, 10, 4), expect[e]) << "element " << e;
  // dim < nodes: one element per node, trailing nodes own nothing.
  for (std::size_t e = 0; e < 3; ++e) EXPECT_EQ(owner_of(e, 3, 8), e);
}

TEST(SliceWork, ConservesRefsAndDistinct) {
  const ReductionInput in = synth_input(600, 4000, 2, 99);
  for (const unsigned nodes : {1u, 3u, 8u}) {
    const DistWork w = slice_work(in.pattern, nodes);
    ASSERT_EQ(w.nodes(), nodes);
    std::size_t refs = 0;
    for (unsigned n = 0; n < nodes; ++n) {
      refs += w.slices[n].refs;
      std::uint64_t row = 0;
      for (unsigned d = 0; d < nodes; ++d) row += w.refs_to[n * nodes + d];
      EXPECT_EQ(row, w.slices[n].refs) << "node " << n;
      EXPECT_LE(w.slices[n].distinct, w.distinct_total);
    }
    EXPECT_EQ(refs, in.pattern.num_refs());
    EXPECT_EQ(w.distinct_total, count_distinct(in.pattern));
  }
}

TEST(Cluster, RunToRunDeterminismIsBitwise) {
  const ReductionInput in = synth_input(512, 3000, 2, 7);
  const ClusterConfig cfg = cluster_of(5);
  for (const DistStrategy s : all_dist_strategies()) {
    for (const CombineOp op :
         {CombineOp::kAdd, CombineOp::kMin, CombineOp::kMax}) {
      const DistRunResult a = simulate_distributed(in, op, s, cfg);
      const DistRunResult b = simulate_distributed(in, op, s, cfg);
      EXPECT_EQ(std::memcmp(&a.total_s, &b.total_s, sizeof(double)), 0)
          << to_string(s);
      EXPECT_EQ(std::memcmp(&a.partial_s, &b.partial_s, sizeof(double)), 0);
      EXPECT_EQ(a.messages, b.messages);
      EXPECT_EQ(a.bytes, b.bytes);
      EXPECT_TRUE(bitwise_equal(a.w, b.w)) << to_string(s);
    }
  }
}

TEST(Cluster, SingleNodeDegeneratesToIntraNodeCost) {
  const ReductionInput in = synth_input(400, 2500, 2, 3);
  const DistWork work = slice_work(in.pattern, 1);
  const ClusterConfig cfg = cluster_of(1);
  for (const DistStrategy s : all_dist_strategies()) {
    const DistRunResult r = simulate_strategy(work, s, cfg);
    // No peers: zero communication, and the total IS the local phase —
    // which is priced straight off the intra-node predict_cost surface.
    EXPECT_EQ(r.messages, 0u) << to_string(s);
    EXPECT_EQ(r.bytes, 0u) << to_string(s);
    EXPECT_DOUBLE_EQ(r.total_s, r.partial_s) << to_string(s);
    EXPECT_DOUBLE_EQ(r.total_s, partial_cost(s, work, 0, cfg))
        << to_string(s);
  }
  const PatternStats st = node_stats(work, 0, cfg.cores_per_node);
  const unsigned flops = in.pattern.body_flops;
  EXPECT_DOUBLE_EQ(
      simulate_strategy(work, DistStrategy::kReplication, cfg).total_s,
      predict_cost(SchemeKind::kRep, st, flops, kMc).total());
  EXPECT_DOUBLE_EQ(
      simulate_strategy(work, DistStrategy::kCombining, cfg).total_s,
      predict_cost(SchemeKind::kHash, st, flops, kMc).total() +
          1e-9 * static_cast<double>(work.slices[0].distinct) * kMc.ns_slot);
}

TEST(Cluster, ZeroSizeReductionHasNoDivisionByZero) {
  ReductionInput in;  // dim 0, no iterations, no values
  for (const unsigned nodes : {1u, 2u, 4u}) {
    const ClusterConfig cfg = cluster_of(nodes);
    const DistWork work = slice_work(in.pattern, nodes);
    EXPECT_EQ(work.distinct_total, 0u);
    for (const DistStrategy s : all_dist_strategies()) {
      const DistRunResult r = simulate_distributed(in, CombineOp::kAdd, s, cfg);
      EXPECT_TRUE(std::isfinite(r.total_s)) << to_string(s);
      EXPECT_GE(r.total_s, 0.0) << to_string(s);
      EXPECT_TRUE(r.w.empty());
    }
  }
}

TEST(Cluster, OneElementPerNodeIsExact) {
  // dim == nodes, iteration i references element i once: every strategy
  // must land values[i] * iteration_scale(i) at element i.
  const unsigned nodes = 4;
  ReductionInput in;
  in.pattern.dim = nodes;
  in.pattern.refs = Csr({0, 1, 2, 3, 4}, {0, 1, 2, 3});
  in.pattern.body_flops = 2;
  in.values = {1.5, -2.0, 3.25, 0.5};
  std::vector<double> want(nodes, 0.0);
  run_sequential(in, want);

  for (const unsigned cluster : {nodes, 2 * nodes /* empty slices */}) {
    const ClusterConfig cfg = cluster_of(cluster);
    for (const DistStrategy s : all_dist_strategies()) {
      const DistRunResult r =
          simulate_distributed(in, CombineOp::kAdd, s, cfg);
      ASSERT_EQ(r.w.size(), nodes);
      // One contribution per element: no reassociation, so exact.
      EXPECT_TRUE(bitwise_equal(r.w, want))
          << to_string(s) << " on " << cluster << " nodes";
    }
  }
}

TEST(Cluster, DoublingBandwidthNeverSlowsAnyStrategy) {
  const ReductionInput in = synth_input(800, 5000, 2, 11);
  for (const unsigned nodes : {2u, 5u, 8u}) {
    const DistWork work = slice_work(in.pattern, nodes);
    for (const DistStrategy s : all_dist_strategies()) {
      LinkConfig link{10e-6, 0.5e9, 5e-6};
      double prev = simulate_strategy(work, s, cluster_of(nodes, link)).total_s;
      for (int step = 0; step < 6; ++step) {
        link.bytes_per_s *= 2.0;
        const double now =
            simulate_strategy(work, s, cluster_of(nodes, link)).total_s;
        EXPECT_LE(now, prev)
            << to_string(s) << " nodes=" << nodes << " step=" << step;
        prev = now;
      }
    }
  }
}

TEST(DistributedCostModel, RankingIsSortedAndMatchesTheSimulation) {
  const DistributedCostModel model(cluster_of(6, LinkConfig::hpc_100g()));
  const DistQuery q{1 << 15, 100'000, 200'000, 0.5, 4};
  const auto ranked = model.predict_all(q);
  ASSERT_EQ(ranked.size(), all_dist_strategies().size());
  for (std::size_t i = 1; i < ranked.size(); ++i)
    EXPECT_LE(ranked[i - 1].total_s, ranked[i].total_s);
  EXPECT_EQ(model.best(q), ranked.front().strategy);
  // The model IS the simulation: per-strategy totals agree bitwise.
  const DistWork work =
      synth_work(q.dim, q.iterations, q.refs, q.sparsity, q.body_flops, 6);
  for (const auto& pr : ranked) {
    const DistRunResult r =
        simulate_strategy(work, pr.strategy, model.config());
    EXPECT_EQ(std::memcmp(&pr.total_s, &r.total_s, sizeof(double)), 0)
        << to_string(pr.strategy);
  }
}

TEST(DistributedCostModel, MorePartialWorkRaisesEveryStrategy) {
  const DistributedCostModel model(cluster_of(4));
  const DistQuery small{1 << 14, 50'000, 100'000, 0.5, 4};
  DistQuery big = small;
  big.iterations *= 8;
  big.refs *= 8;
  const auto a = model.predict_all(small);
  const auto b = model.predict_all(big);
  for (const auto& pb : b) {
    for (const auto& pa : a)
      if (pa.strategy == pb.strategy) EXPECT_GT(pb.total_s, pa.total_s);
  }
}

}  // namespace
}  // namespace sapp::sim
