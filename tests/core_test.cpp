// Tests for the adaptive core: characterizer, decision models, cost model,
// phase monitor and the AdaptiveReducer feedback loop.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/adaptive.hpp"
#include "core/runtime.hpp"
#include "workloads/workload.hpp"

namespace sapp {
namespace {

// Hand-built pattern with exactly known statistics:
//   dim = 10, iterations = 4,
//   iter 0: {0, 1}, iter 1: {1, 2}, iter 2: {2, 3}, iter 3: {3, 3}.
AccessPattern tiny_pattern() {
  AccessPattern p;
  p.dim = 10;
  p.refs = Csr({0, 2, 4, 6, 8}, {0, 1, 1, 2, 2, 3, 3, 3});
  return p;
}

TEST(Characterize, ExactMeasuresOnTinyPattern) {
  const PatternStats s = characterize(tiny_pattern(), 2);
  EXPECT_EQ(s.dim, 10u);
  EXPECT_EQ(s.iterations, 4u);
  EXPECT_EQ(s.refs, 8u);
  EXPECT_EQ(s.distinct, 4u);           // {0,1,2,3}
  EXPECT_DOUBLE_EQ(s.sp, 40.0);        // 4/10
  EXPECT_DOUBLE_EQ(s.con, 2.0);        // 8 refs / 4 distinct
  // Iter distinct counts: 2,2,2,1 -> MO = 7/4.
  EXPECT_DOUBLE_EQ(s.mo, 1.75);
  EXPECT_DOUBLE_EQ(s.chr, 8.0 / (2 * 10));
  EXPECT_TRUE(s.lw_legal);
}

TEST(Characterize, ChHistogramCountsPerElementReferences) {
  const PatternStats s = characterize(tiny_pattern(), 1);
  // Element 0: 1 ref; 1: 2; 2: 2; 3: 3.
  EXPECT_EQ(s.ch[1], 1u);
  EXPECT_EQ(s.ch[2], 2u);
  EXPECT_EQ(s.ch[3], 1u);
}

TEST(Characterize, SharedFractionUnderBlockSchedule) {
  // 2 threads, 4 iterations: thread 0 runs iters {0,1}, thread 1 {2,3}.
  // Touched by t0: {0,1,2}; t1: {2,3}. Shared: {2}.
  const PatternStats s = characterize(tiny_pattern(), 2);
  EXPECT_NEAR(s.shared_fraction, 0.25, 1e-9);
}

TEST(Characterize, SamplingApproximatesExact) {
  workloads::SynthParams p;
  p.dim = 20000;
  p.distinct = 8000;
  p.iterations = 40000;
  p.refs_per_iter = 2;
  p.seed = 5;
  const auto in = workloads::make_synthetic(p);
  const PatternStats exact = characterize(in.pattern, 4);
  CharacterizeOptions opt;
  opt.sample_stride = 16;
  const PatternStats approx = characterize(in.pattern, 4, opt);
  EXPECT_NEAR(approx.mo, exact.mo, 0.05);
  EXPECT_NEAR(static_cast<double>(approx.refs),
              static_cast<double>(exact.refs),
              0.05 * static_cast<double>(exact.refs));
  // Distinct is biased downward by sampling but must stay within 2x.
  EXPECT_GT(approx.distinct * 4, exact.distinct);
}

TEST(Characterize, GiniDetectsSkew) {
  workloads::SynthParams uniform;
  uniform.dim = 5000;
  uniform.distinct = 4000;
  uniform.iterations = 30000;
  uniform.zipf_theta = 0.0;
  uniform.seed = 6;
  workloads::SynthParams skewed = uniform;
  skewed.zipf_theta = 1.1;
  const auto u = characterize(workloads::make_synthetic(uniform).pattern, 4);
  const auto z = characterize(workloads::make_synthetic(skewed).pattern, 4);
  EXPECT_GT(z.chd_gini, u.chd_gini + 0.2);
}

TEST(Characterize, LwReplicationOnSplitPattern) {
  // Every iteration touches both halves of the element space: replication
  // factor must approach 2 under 2 threads.
  std::vector<std::uint64_t> ptr{0};
  std::vector<std::uint32_t> idx;
  for (std::size_t i = 0; i < 100; ++i) {
    idx.push_back(static_cast<std::uint32_t>(i % 50));
    idx.push_back(static_cast<std::uint32_t>(50 + i % 50));
    ptr.push_back(idx.size());
  }
  AccessPattern p;
  p.dim = 100;
  p.refs = Csr(std::move(ptr), std::move(idx));
  const PatternStats s = characterize(p, 2);
  EXPECT_NEAR(s.lw_replication, 2.0, 1e-9);
}

// ---------------- decision ----------------

PatternStats stats_with(double sp, double chr, double dim_ratio,
                        double shared_frac, double lw_repl = 1.0,
                        double lw_imb = 1.0, bool lw_legal = true) {
  PatternStats s;
  s.threads = 8;
  s.dim = 100000;
  s.iterations = 100000;
  s.refs = 200000;
  s.distinct = 50000;
  s.sp = sp;
  s.chr = chr;
  s.dim_ratio = dim_ratio;
  s.shared_fraction = shared_frac;
  s.lw_replication = lw_repl;
  s.lw_imbalance = lw_imb;
  s.lw_legal = lw_legal;
  s.touched_per_thread = 10000;
  s.mo = 2;
  s.con = 4;
  return s;
}

TEST(DecideRules, VerySparseScatterPicksHash) {
  auto s = stats_with(0.3, 0.1, 10.0, 0.5);
  s.mo = 28;  // wide scatter iterations (the Spice signature)
  const auto d = decide_rules(s);
  EXPECT_EQ(d.recommended, SchemeKind::kHash);
  EXPECT_NE(d.rationale.find("hash"), std::string::npos);
}

TEST(DecideRules, SparseButNarrowIterationsAvoidHash) {
  auto s = stats_with(0.3, 0.1, 10.0, 0.1);
  s.mo = 2;  // sparse, but each iteration touches little: sel territory
  const auto d = decide_rules(s);
  EXPECT_NE(d.recommended, SchemeKind::kHash);
}

TEST(DecideRules, DenseReusePicksRep) {
  const auto d = decide_rules(stats_with(40.0, 3.5, 1.5, 0.6));
  EXPECT_EQ(d.recommended, SchemeKind::kRep);
}

TEST(DecideRules, LocalizedBalancedPicksLw) {
  const auto d = decide_rules(stats_with(5.0, 0.5, 8.0, 0.2, 1.1, 1.1));
  EXPECT_EQ(d.recommended, SchemeKind::kLocalWrite);
}

TEST(DecideRules, HighSharingPicksLl) {
  const auto d =
      decide_rules(stats_with(5.0, 0.5, 8.0, 0.8, 2.0, 3.0));
  EXPECT_EQ(d.recommended, SchemeKind::kLinked);
}

TEST(DecideRules, LowSharingPicksSel) {
  const auto d = decide_rules(stats_with(5.0, 0.5, 8.0, 0.1, 2.0, 3.0));
  EXPECT_EQ(d.recommended, SchemeKind::kSelective);
}

TEST(DecideRules, LwIllegalNeverRecommendsLw) {
  auto s = stats_with(5.0, 0.5, 8.0, 0.2, 1.0, 1.0, /*lw_legal=*/false);
  const auto d = decide_rules(s);
  EXPECT_NE(d.recommended, SchemeKind::kLocalWrite);
}

TEST(CostModel, LwMarkedInapplicableWhenIllegal) {
  auto s = stats_with(5.0, 0.5, 8.0, 0.2);
  s.lw_legal = false;
  const auto c =
      predict_cost(SchemeKind::kLocalWrite, s, 4, MachineCoeffs::defaults());
  EXPECT_FALSE(c.applicable);
}

TEST(CostModel, PredictAllSortsAscending) {
  const auto all =
      predict_all(stats_with(5.0, 0.5, 8.0, 0.2), 4, MachineCoeffs::defaults());
  ASSERT_EQ(all.size(), 5u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    if (all[i].applicable) {
      EXPECT_LE(all[i - 1].total(), all[i].total());
    }
  }
}

TEST(CostModel, RepInitMergeScaleWithDim) {
  auto small = stats_with(40.0, 3.0, 1.0, 0.5);
  auto large = small;
  large.dim = 10 * small.dim;
  const auto mc = MachineCoeffs::defaults();
  const auto cs = predict_cost(SchemeKind::kRep, small, 4, mc);
  const auto cl = predict_cost(SchemeKind::kRep, large, 4, mc);
  EXPECT_GT(cl.init_s, 5 * cs.init_s);
  EXPECT_GT(cl.merge_s, 5 * cs.merge_s);
}

TEST(DecideModel, PicksArgminAndExplains) {
  const auto d = decide_model(stats_with(0.2, 0.05, 12.0, 0.3), 4,
                              MachineCoeffs::defaults());
  EXPECT_TRUE(d.predictions.front().applicable);
  EXPECT_EQ(d.recommended, d.predictions.front().scheme);
  EXPECT_FALSE(d.rationale.empty());
}

// ---------------- phase monitor ----------------

TEST(PhaseMonitor, StablePatternNeverTriggers) {
  const auto p = tiny_pattern();
  PhaseMonitor mon(0.25);
  const auto sig = PatternSignature::of(p);
  mon.rebase(sig);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(mon.observe(sig));
}

TEST(PhaseMonitor, DimensionChangeTriggersImmediately) {
  auto p = tiny_pattern();
  PhaseMonitor mon(0.25);
  mon.rebase(PatternSignature::of(p));
  EXPECT_FALSE(mon.observe(PatternSignature::of(p)));
  AccessPattern q = tiny_pattern();
  q.dim = 20;
  EXPECT_TRUE(mon.observe(PatternSignature::of(q)));
}

TEST(PhaseMonitor, GradualDriftAccumulates) {
  PhaseMonitor mon(0.25);
  workloads::SynthParams sp;
  sp.dim = 1000;
  sp.distinct = 500;
  sp.iterations = 1000;
  sp.seed = 1;
  auto base = workloads::make_synthetic(sp);
  mon.rebase(PatternSignature::of(base.pattern));
  bool triggered = false;
  for (int step = 1; step <= 30 && !triggered; ++step) {
    sp.iterations = 1000 + 80 * step;  // the loop keeps growing
    sp.seed = 1 + step;
    auto next = workloads::make_synthetic(sp);
    triggered = mon.observe(PatternSignature::of(next.pattern));
  }
  EXPECT_TRUE(triggered);
}

// ---------------- adaptive reducer ----------------

ReductionInput sparse_input() {
  workloads::SynthParams p;
  p.dim = 300000;
  p.distinct = 900;
  p.iterations = 2000;
  p.refs_per_iter = 3;
  p.seed = 77;
  p.lw_legal = false;
  return workloads::make_synthetic(p);
}

TEST(AdaptiveReducer, ProducesCorrectResults) {
  const auto in = sparse_input();
  std::vector<double> ref(in.pattern.dim, 0.0);
  run_sequential(in, ref);

  ThreadPool pool(4);
  AdaptiveReducer red(pool, MachineCoeffs::defaults());
  std::vector<double> out(in.pattern.dim, 0.0);
  red.invoke(in, out);
  for (std::size_t e = 0; e < ref.size(); e += 503)
    ASSERT_NEAR(ref[e], out[e], 1e-8);
}

TEST(AdaptiveReducer, CharacterizesOnceForStablePattern) {
  const auto in = sparse_input();
  ThreadPool pool(2);
  AdaptiveReducer red(pool, MachineCoeffs::defaults());
  std::vector<double> out(in.pattern.dim, 0.0);
  for (int k = 0; k < 10; ++k) {
    std::fill(out.begin(), out.end(), 0.0);
    red.invoke(in, out);
  }
  EXPECT_EQ(red.invocations(), 10u);
  EXPECT_EQ(red.recharacterizations(), 1u);
}

TEST(AdaptiveReducer, DriftTriggersRecharacterization) {
  ThreadPool pool(2);
  AdaptiveReducer red(pool, MachineCoeffs::defaults(),
                      AdaptiveOptions{.drift_threshold = 0.2});
  workloads::SynthParams p;
  p.dim = 50000;
  p.distinct = 400;
  p.iterations = 1000;
  p.seed = 3;
  auto in = workloads::make_synthetic(p);
  std::vector<double> out(in.pattern.dim, 0.0);
  red.invoke(in, out);
  EXPECT_EQ(red.recharacterizations(), 1u);
  // The loop's extent quadruples: structural drift.
  p.iterations = 8000;
  p.distinct = 4000;
  p.seed = 4;
  in = workloads::make_synthetic(p);
  std::fill(out.begin(), out.end(), 0.0);
  red.invoke(in, out);
  EXPECT_GE(red.recharacterizations(), 2u);
}

TEST(AdaptiveReducer, MispredictionSwitchesScheme) {
  // Deliberately poisoned coefficients make the model love rep for a
  // pattern where rep is terrible (tiny touched set in a huge array);
  // sustained overruns must switch to the runner-up.
  MachineCoeffs poisoned = MachineCoeffs::defaults();
  poisoned.ns_init = 1e-7;    // model thinks init is free
  poisoned.ns_merge = 1e-7;   // ... and merge too
  poisoned.ns_alloc = 1e-7;   // ... and allocating P full copies
  poisoned.ns_hash = 1e9;     // and that hash is absurdly expensive
  poisoned.ns_slot = 1e9;     // ... and so is sel's indirection
  poisoned.ns_update_far = poisoned.ns_update;

  const auto in = sparse_input();
  ThreadPool pool(2);
  AdaptiveReducer red(pool, poisoned,
                      AdaptiveOptions{.mispredict_ratio = 3.0,
                                      .mispredict_patience = 2});
  std::vector<double> out(in.pattern.dim, 0.0);
  const SchemeKind first = [&] {
    red.invoke(in, out);
    return red.current();
  }();
  for (int k = 0; k < 8; ++k) {
    std::fill(out.begin(), out.end(), 0.0);
    red.invoke(in, out);
  }
  EXPECT_EQ(first, SchemeKind::kRep);  // the poisoned model's favourite
  EXPECT_GT(red.scheme_switches(), 0u);
  EXPECT_NE(red.current(), SchemeKind::kRep);
}

// ---------------- runtime facade ----------------

TEST(SmartAppsRuntime, SitesAreIndependentAndReported) {
  SmartAppsRuntime rt(SmartAppsRuntime::Options{
      .threads = 2, .calibrate = false, .adaptive = {}});
  auto in = sparse_input();
  std::vector<double> out(in.pattern.dim, 0.0);
  rt.reducer("siteA").invoke(in, out);
  auto& again = rt.reducer("siteA");
  EXPECT_EQ(again.invocations(), 1u);
  const std::string rep = rt.report();
  EXPECT_NE(rep.find("siteA"), std::string::npos);
  EXPECT_NE(rep.find("2 threads"), std::string::npos);
}

TEST(SmartAppsRuntime, CalibrationProducesPositiveCoefficients) {
  SmartAppsRuntime rt(SmartAppsRuntime::Options{.threads = 2});
  const MachineCoeffs& mc = rt.coeffs();
  EXPECT_GT(mc.ns_update, 0.0);
  EXPECT_GT(mc.ns_init, 0.0);
  EXPECT_GT(mc.ns_atomic, 0.0);
  EXPECT_GT(mc.fork_join_us, 0.0);
}

// ---------------- multi-site runtime + decision cache ----------------

RuntimeOptions uncalibrated(unsigned threads) {
  RuntimeOptions o;
  o.threads = threads;
  o.calibrate = false;
  // Park the mispredict feedback loop: with uncalibrated coefficients a
  // loaded CI host overruns every prediction, and these tests pin the
  // site/cache bookkeeping, not adaptation (the poisoned-cache test
  // re-arms it explicitly). The time-drift detector is parked for the
  // same reason — noisy CI timing must not inject re-characterizations
  // into counter assertions (tests/phase_drift_test.cpp covers it with
  // synthetic times).
  o.adaptive.mispredict_patience = 1 << 30;
  o.adaptive.monitor.time_drift_patience = 1 << 30;
  return o;
}

TEST(Runtime, UntaggedPatternsGetDimensionKeyedAnonymousSites) {
  // Two structurally different untagged loops must not share one site —
  // alternating submissions would thrash the drift monitor otherwise.
  Runtime rt(uncalibrated(2));
  auto a = sparse_input();
  a.pattern.loop_id.clear();
  auto b = sparse_input();
  b.pattern.loop_id.clear();
  b.pattern.dim += 1000;
  b.values.clear();  // keep consistent(): rebuild values for same refs
  b.values.assign(b.pattern.num_refs(), 1.0);
  std::vector<double> out_a(a.pattern.dim, 0.0);
  std::vector<double> out_b(b.pattern.dim, 0.0);
  for (int k = 0; k < 3; ++k) {
    (void)rt.submit(a, out_a);
    (void)rt.submit(b, out_b);
  }
  EXPECT_EQ(rt.site_count(), 2u);
  for (const auto& id : rt.site_ids()) {
    EXPECT_EQ(rt.site(id).invocations(), 3u) << id;
    EXPECT_EQ(rt.site(id).recharacterizations(), 1u) << id;
  }
}

TEST(Runtime, SubmitRoutesBySiteIdAndByLoopId) {
  Runtime rt(uncalibrated(2));
  auto in = sparse_input();
  in.pattern.loop_id = "App/loop1";
  std::vector<double> out(in.pattern.dim, 0.0);
  (void)rt.submit(in, out);                  // keyed by pattern.loop_id
  (void)rt.submit("App/loop2", in, out);     // explicit site id wins
  EXPECT_EQ(rt.site_count(), 2u);
  EXPECT_EQ(rt.site("App/loop1").invocations(), 1u);
  EXPECT_EQ(rt.site("App/loop2").invocations(), 1u);
  EXPECT_EQ(rt.site_ids(),
            (std::vector<std::string>{"App/loop1", "App/loop2"}));
  const std::string rep = rt.report();
  EXPECT_NE(rep.find("App/loop1"), std::string::npos);
  EXPECT_NE(rep.find("2 threads"), std::string::npos);
}

TEST(DecisionCache, JsonRoundTripPreservesEntries) {
  DecisionCache cache;
  CachedDecision d;
  d.site = "App/loop";
  d.scheme = SchemeKind::kSelective;
  d.threads = 4;
  d.signature.dim = 1000;
  d.signature.iterations = 500;
  d.signature.refs = 1500;
  d.signature.sampled_index_sum = 0xFFFFFFFFFFFFFFull;  // > 2^53: hex str
  d.signature.sampled_index_xor = 0xDEADBEEFCAFEBABEull;
  d.predicted_total_s = 0.00125;
  d.invocations = 7;
  d.rationale = "test \"quoted\" rationale";
  cache.put(d);

  const auto round = DecisionCache::from_json(cache.to_json());
  ASSERT_TRUE(round.has_value());
  const CachedDecision* e = round->find("App/loop");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->scheme, SchemeKind::kSelective);
  EXPECT_EQ(e->threads, 4u);
  EXPECT_EQ(e->signature.sampled_index_sum, d.signature.sampled_index_sum);
  EXPECT_EQ(e->signature.sampled_index_xor, d.signature.sampled_index_xor);
  EXPECT_DOUBLE_EQ(e->predicted_total_s, 0.00125);
  EXPECT_EQ(e->invocations, 7u);
  EXPECT_EQ(e->rationale, d.rationale);
}

TEST(DecisionCache, RejectsMalformedDocuments) {
  std::string err;
  EXPECT_FALSE(DecisionCache::from_json("not json", &err).has_value());
  EXPECT_FALSE(DecisionCache::from_json("{}", &err).has_value());
  EXPECT_FALSE(
      DecisionCache::from_json(R"({"schema_version": 99, "sites": []})", &err)
          .has_value());
  EXPECT_FALSE(DecisionCache::load("/nonexistent/path.json", &err)
                   .has_value());
  EXPECT_FALSE(err.empty());
}

TEST(DecisionCache, MatchEnforcesDimThreadsAndTolerance) {
  CachedDecision d;
  d.threads = 2;
  d.signature.dim = 100;
  d.signature.iterations = 1000;
  d.signature.refs = 2000;
  d.signature.sampled_index_sum = 10000;
  PatternSignature same = d.signature;
  EXPECT_TRUE(DecisionCache::matches(d, same, 2, 0.1));
  EXPECT_FALSE(DecisionCache::matches(d, same, 4, 0.1));  // threads differ
  PatternSignature other = same;
  other.dim = 101;  // structural change: never matches
  EXPECT_FALSE(DecisionCache::matches(d, other, 2, 0.1));
  PatternSignature drifted = same;
  drifted.refs = 2150;  // 7% drift: inside a 10% tolerance
  EXPECT_TRUE(DecisionCache::matches(d, drifted, 2, 0.1));
  drifted.refs = 2500;  // 20% drift: outside
  EXPECT_FALSE(DecisionCache::matches(d, drifted, 2, 0.1));
}

TEST(Runtime, WarmStartAdoptsCachedSchemeAndSkipsCharacterization) {
  const auto in = sparse_input();
  const std::string path = ::testing::TempDir() + "core_runtime_cache.json";
  std::vector<double> out(in.pattern.dim, 0.0);
  SchemeKind learned{};
  {
    Runtime learner(uncalibrated(2));
    (void)learner.submit("site", in, out);
    learned = learner.site("site").current();
    ASSERT_TRUE(learner.save_decisions(path));
  }
  RuntimeOptions o = uncalibrated(2);
  o.decision_cache_path = path;
  Runtime rt(o);
  EXPECT_EQ(rt.warm_entries(), 1u);
  std::fill(out.begin(), out.end(), 0.0);
  (void)rt.submit("site", in, out);
  const AdaptiveReducer& r = rt.site("site");
  EXPECT_TRUE(r.warm_started());
  EXPECT_EQ(r.current(), learned);
  EXPECT_EQ(r.recharacterizations(), 0u);  // characterize was skipped
  // And the warm-started site still computes the right answer.
  std::vector<double> ref(in.pattern.dim, 0.0);
  run_sequential(in, ref);
  for (std::size_t e = 0; e < ref.size(); e += 503)
    ASSERT_NEAR(ref[e], out[e], 1e-8);
  std::remove(path.c_str());
}

TEST(Runtime, WarmStartFallsBackToColdPathOnSignatureMismatch) {
  const auto in = sparse_input();
  const std::string path =
      ::testing::TempDir() + "core_runtime_cache_mismatch.json";
  std::vector<double> out(in.pattern.dim, 0.0);
  {
    Runtime learner(uncalibrated(2));
    (void)learner.submit("site", in, out);
    ASSERT_TRUE(learner.save_decisions(path));
  }
  // Same site id, structurally different pattern (dim changed).
  workloads::SynthParams p;
  p.dim = 120000;
  p.distinct = 700;
  p.iterations = 1500;
  p.refs_per_iter = 3;
  p.seed = 78;
  const auto other = workloads::make_synthetic(p);
  RuntimeOptions o = uncalibrated(2);
  o.decision_cache_path = path;
  Runtime rt(o);
  std::vector<double> out2(other.pattern.dim, 0.0);
  (void)rt.submit("site", other, out2);
  const AdaptiveReducer& r = rt.site("site");
  EXPECT_FALSE(r.warm_started());
  EXPECT_EQ(r.recharacterizations(), 1u);  // cold path taken
  std::remove(path.c_str());
}

TEST(Runtime, WarmSnapshotCarriesEvidenceAndPredictionForward) {
  const auto in = sparse_input();
  const std::string path =
      ::testing::TempDir() + "core_runtime_cache_carry.json";
  std::vector<double> out(in.pattern.dim, 0.0);
  std::string original_rationale;
  {
    Runtime learner(uncalibrated(2));
    for (int k = 0; k < 5; ++k) (void)learner.submit("site", in, out);
    original_rationale = learner.site("site").decision().rationale;
    ASSERT_TRUE(learner.save_decisions(path));
  }
  const auto saved = DecisionCache::load(path);
  ASSERT_TRUE(saved.has_value());
  EXPECT_GT(saved->find("site")->predicted_total_s, 0.0);
  EXPECT_EQ(saved->find("site")->invocations, 5u);

  // A warm-started run that saves again must accumulate evidence and
  // keep the original decider rationale, not reset both.
  RuntimeOptions o = uncalibrated(2);
  o.decision_cache_path = path;
  Runtime rt(o);
  for (int k = 0; k < 3; ++k) (void)rt.submit("site", in, out);
  ASSERT_TRUE(rt.site("site").warm_started());
  const DecisionCache resaved = rt.snapshot_decisions();
  EXPECT_EQ(resaved.find("site")->invocations, 8u);  // 5 inherited + 3
  EXPECT_EQ(resaved.find("site")->rationale, original_rationale);
  EXPECT_GT(resaved.find("site")->predicted_total_s, 0.0);
  std::remove(path.c_str());
}

TEST(Runtime, WarmStartWithPoisonedCacheEscapesViaRecharacterization) {
  // A cache that promises an absurdly fast scheme (stale host, copied
  // file) must not pin the site forever: sustained overruns against the
  // cached prediction re-characterize on fresh evidence.
  const auto in = sparse_input();
  DecisionCache cache;
  CachedDecision d;
  d.site = "site";
  d.scheme = SchemeKind::kRep;  // pessimal for this sparse pattern
  d.threads = 2;
  d.signature = PatternSignature::of(in.pattern);
  d.predicted_total_s = 1e-12;  // everything overruns this
  cache.put(d);
  const std::string path =
      ::testing::TempDir() + "core_runtime_cache_poison.json";
  ASSERT_TRUE(cache.save(path));

  RuntimeOptions o = uncalibrated(2);
  o.decision_cache_path = path;
  o.adaptive.mispredict_ratio = 2.0;
  o.adaptive.mispredict_patience = 2;
  Runtime rt(o);
  std::vector<double> out(in.pattern.dim, 0.0);
  (void)rt.submit("site", in, out);
  EXPECT_TRUE(rt.site("site").warm_started());
  EXPECT_EQ(rt.site("site").current(), SchemeKind::kRep);
  for (int k = 0; k < 6; ++k) (void)rt.submit("site", in, out);
  EXPECT_GE(rt.site("site").recharacterizations(), 1u);
  EXPECT_FALSE(rt.site("site").warm_started());
  std::remove(path.c_str());
}

TEST(Runtime, ThreadCountMismatchInvalidatesCachedDecision) {
  const auto in = sparse_input();
  const std::string path =
      ::testing::TempDir() + "core_runtime_cache_threads.json";
  std::vector<double> out(in.pattern.dim, 0.0);
  {
    Runtime learner(uncalibrated(2));
    (void)learner.submit("site", in, out);
    ASSERT_TRUE(learner.save_decisions(path));
  }
  RuntimeOptions o = uncalibrated(4);  // decision was learned under 2
  o.decision_cache_path = path;
  Runtime rt(o);
  (void)rt.submit("site", in, out);
  EXPECT_FALSE(rt.site("site").warm_started());
  EXPECT_EQ(rt.site("site").recharacterizations(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sapp
