#!/usr/bin/env python3
"""Markdown link checker for README.md and docs/.

Verifies that every relative link and image target in the repo's markdown
documentation resolves to an existing file or directory, so refactors
cannot silently break doc cross-references. External (http/https/mailto)
links and pure intra-file anchors (#...) are skipped; anchors on relative
links are stripped before the existence check.

Standard library only. Exit code: 0 = all links resolve, 1 = broken links
(each printed as file:line: target).
"""
from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline links/images: [text](target) / ![alt](target). Reference-style
# definitions: [label]: target
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)")
FENCE = re.compile(r"^\s*(```|~~~)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def iter_markdown_files(root: Path):
    yield root / "README.md"
    yield from sorted((root / "docs").rglob("*.md"))


def check_file(md: Path, root: Path) -> list[str]:
    errors = []
    in_fence = False
    for lineno, line in enumerate(md.read_text(encoding="utf-8").splitlines(), 1):
        if FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        targets = INLINE_LINK.findall(line)
        ref = REF_DEF.match(line)
        if ref:
            targets.append(ref.group(1))
        for target in targets:
            if target.startswith(SKIP_PREFIXES):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            if path_part.startswith("/"):
                errors.append(
                    f"{md.relative_to(root)}:{lineno}: absolute path '{target}'"
                )
                continue
            resolved = (md.parent / path_part).resolve()
            try:
                resolved.relative_to(root.resolve())
            except ValueError:
                errors.append(
                    f"{md.relative_to(root)}:{lineno}: '{target}' escapes the repo"
                )
                continue
            if not resolved.exists():
                errors.append(f"{md.relative_to(root)}:{lineno}: broken link '{target}'")
    return errors


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    errors: list[str] = []
    checked = 0
    for md in iter_markdown_files(root):
        if not md.exists():
            errors.append(f"missing expected file: {md.relative_to(root)}")
            continue
        checked += 1
        errors.extend(check_file(md, root))
    if errors:
        print(f"{len(errors)} broken doc link(s) across {checked} file(s):")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"OK: all relative links resolve across {checked} markdown file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
