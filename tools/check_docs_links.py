#!/usr/bin/env python3
"""Markdown link and experiment-coverage checker for README.md and docs/.

Two checks, both standard-library only:

1. Every relative link and image target in the repo's markdown
   documentation resolves to an existing file or directory, so refactors
   cannot silently break doc cross-references. External
   (http/https/mailto) links and pure intra-file anchors (#...) are
   skipped; anchors on relative links are stripped before the existence
   check.

2. Every `sapp_repro` experiment registered in src/repro/ (the
   `r.add({.name = "..."` sites reached from registry.cpp) is mentioned
   in docs/reproducing.md and has committed reference results
   (<name>.md + <name>.json) under docs/results/linux-x86_64/ — a new
   experiment cannot land undocumented or without reference numbers.

Exit code: 0 = everything resolves, 1 = problems (each printed as
file:line: target or as a coverage message).
"""
from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline links/images: [text](target) / ![alt](target). Reference-style
# definitions: [label]: target
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)")
FENCE = re.compile(r"^\s*(```|~~~)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def iter_markdown_files(root: Path):
    yield root / "README.md"
    yield from sorted((root / "docs").rglob("*.md"))


def check_file(md: Path, root: Path) -> list[str]:
    errors = []
    in_fence = False
    for lineno, line in enumerate(md.read_text(encoding="utf-8").splitlines(), 1):
        if FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        targets = INLINE_LINK.findall(line)
        ref = REF_DEF.match(line)
        if ref:
            targets.append(ref.group(1))
        for target in targets:
            if target.startswith(SKIP_PREFIXES):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            if path_part.startswith("/"):
                errors.append(
                    f"{md.relative_to(root)}:{lineno}: absolute path '{target}'"
                )
                continue
            resolved = (md.parent / path_part).resolve()
            try:
                resolved.relative_to(root.resolve())
            except ValueError:
                errors.append(
                    f"{md.relative_to(root)}:{lineno}: '{target}' escapes the repo"
                )
                continue
            if not resolved.exists():
                errors.append(f"{md.relative_to(root)}:{lineno}: broken link '{target}'")
    return errors


# Experiment registrations: `.name = "fig3_adaptive_table"` inside an
# `r.add({...})` in the exp_*.cpp / registry sources.
EXPERIMENT_NAME = re.compile(r"\.name\s*=\s*\"([A-Za-z0-9_]+)\"")
REFERENCE_RESULTS_DIR = "results/linux-x86_64"


def registered_experiments(root: Path) -> list[tuple[str, str]]:
    """(name, source-file) for every experiment registered in src/repro/."""
    found: list[tuple[str, str]] = []
    for src in sorted((root / "src" / "repro").glob("*.cpp")):
        for m in EXPERIMENT_NAME.finditer(src.read_text(encoding="utf-8")):
            found.append((m.group(1), str(src.relative_to(root))))
    return found


def check_experiment_coverage(
    root: Path, experiments: list[tuple[str, str]]
) -> list[str]:
    errors: list[str] = []
    if not experiments:
        return ["no registered experiments found under src/repro/ "
                "(registration idiom changed? update check_docs_links.py)"]
    reproducing = root / "docs" / "reproducing.md"
    reproducing_text = (
        reproducing.read_text(encoding="utf-8") if reproducing.exists() else ""
    )
    results = root / "docs" / REFERENCE_RESULTS_DIR
    for name, src in experiments:
        # A bare substring would pass vacuously for common-word names
        # ("overhead" appears all over the prose): require the runnable
        # form `sapp_repro <name>` or the backticked literal.
        if (f"sapp_repro {name}" not in reproducing_text
                and f"`{name}`" not in reproducing_text):
            errors.append(
                f"{src}: experiment '{name}' is not documented in "
                f"docs/reproducing.md (need `sapp_repro {name}`)"
            )
        for ext in ("md", "json"):
            if not (results / f"{name}.{ext}").exists():
                errors.append(
                    f"{src}: experiment '{name}' has no committed reference "
                    f"result docs/{REFERENCE_RESULTS_DIR}/{name}.{ext}"
                )
    return errors


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    errors: list[str] = []
    checked = 0
    for md in iter_markdown_files(root):
        if not md.exists():
            errors.append(f"missing expected file: {md.relative_to(root)}")
            continue
        checked += 1
        errors.extend(check_file(md, root))
    experiments = registered_experiments(root)
    errors.extend(check_experiment_coverage(root, experiments))
    if errors:
        print(f"{len(errors)} problem(s) across {checked} markdown file(s) "
              f"and {len(experiments)} registered experiment(s):")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"OK: all relative links resolve across {checked} markdown file(s); "
          f"all {len(experiments)} registered experiments are documented in "
          f"docs/reproducing.md with committed reference results")
    return 0


if __name__ == "__main__":
    sys.exit(main())
